// Package sim is the simulation kernel under internal/core: the
// unified component model the machine's cycle loop runs over. Every
// microarchitectural unit (CGRA executor, the three stream engines,
// the dispatcher, the control core) implements Component — one Tick
// shape instead of the five ad-hoc ones the machine used to sequence
// by hand — and reports a wake hint describing when it next needs a
// cycle. The kernel combines the hints so the run loop can skip host
// work for cycles in which nothing can happen: when every component
// is Idle or Timed, the machine state is provably frozen until the
// earliest wake cycle, and the loop may jump straight there without
// changing a single architecturally visible outcome (docs/SIMKERNEL.md
// gives the full contract).
package sim

// WakeKind classifies a component's next-wake hint.
type WakeKind uint8

const (
	// WakeReady: the component can make progress now and must be
	// ticked every cycle.
	WakeReady WakeKind = iota
	// WakeTimed: the component is inert until a known future cycle
	// (a memory response in flight, a pipeline latency, a busy core).
	WakeTimed
	// WakeIdle: the component will do nothing until another
	// component's action changes its inputs.
	WakeIdle
)

func (k WakeKind) String() string {
	switch k {
	case WakeReady:
		return "ready"
	case WakeTimed:
		return "timed"
	case WakeIdle:
		return "idle"
	}
	return "WakeKind(?)"
}

// Hint is one component's answer to "when do you next need a cycle?".
// The zero value is WakeReady — a component that cannot prove it is
// inert defaults to being ticked every cycle, which is always sound.
type Hint struct {
	Kind WakeKind
	At   uint64 // wake cycle, meaningful only for WakeTimed
}

// ReadyNow hints that the component has work this cycle.
func ReadyNow() Hint { return Hint{Kind: WakeReady} }

// WakeAt hints that the component is inert until the given cycle.
func WakeAt(cycle uint64) Hint { return Hint{Kind: WakeTimed, At: cycle} }

// Idle hints that the component is inert until another component acts.
func Idle() Hint { return Hint{Kind: WakeIdle} }

// Earliest combines two hints: Ready dominates, then the earlier of
// two timed wakes, and Idle only when both sides are idle.
func (h Hint) Earliest(o Hint) Hint {
	switch {
	case h.Kind == WakeReady || o.Kind == WakeReady:
		return ReadyNow()
	case h.Kind == WakeTimed && o.Kind == WakeTimed:
		if o.At < h.At {
			return o
		}
		return h
	case o.Kind == WakeTimed:
		return o
	default:
		return h
	}
}

// Component is one simulated unit under the kernel.
//
// The wake-hint contract: after Tick(now) has run for every component
// of a machine, NextWake(now) must be sound — a component may report
// WakeIdle or WakeAt(c) only if ticking it at any cycle in (now, c)
// (or at any later cycle at all, for Idle), with every other
// component's state unchanged, would alter no state and no statistic.
// Over-reporting WakeReady is always safe; it only costs host time.
// A component whose per-cycle behavior in the frozen state is not a
// strict no-op (it counts stall cycles, say) additionally implements
// Skipper so skipped spans stay statistically cycle-exact.
type Component interface {
	// Name identifies the component in error attribution ("mse").
	Name() string
	// Tick advances the component one cycle.
	Tick(now uint64) error
	// NextWake reports when the component next needs a cycle, given
	// the machine state after the current cycle's ticks.
	NextWake(now uint64) Hint
	// Progress is a monotone counter that increases iff the component
	// has done observable work; the run loop's hang detection watches
	// the sum across components.
	Progress() uint64
}

// Skipper is implemented by components that must account for skipped
// cycles: OnSkip(from, to) reports that cycles [from, to) were elided
// because every component was idle or timed-waiting, and the component
// must apply whatever per-cycle bookkeeping (stall counters) those
// cycles would have performed.
type Skipper interface {
	OnSkip(from, to uint64)
}

// Kernel is the registry of one machine's components, in tick order.
type Kernel struct {
	comps []Component

	// Skipped counts the cycles elided by skip-ahead.
	Skipped uint64
}

// Register appends a component; registration order is tick order.
func (k *Kernel) Register(c Component) { k.comps = append(k.comps, c) }

// Components returns the registered components in tick order.
func (k *Kernel) Components() []Component { return k.comps }

// Progress sums the components' monotone progress counters.
func (k *Kernel) Progress() uint64 {
	var p uint64
	for _, c := range k.comps {
		p += c.Progress()
	}
	return p
}

// NextWake combines the components' hints. WakeReady short-circuits.
func (k *Kernel) NextWake(now uint64) Hint {
	h := Idle()
	for _, c := range k.comps {
		h = h.Earliest(c.NextWake(now))
		if h.Kind == WakeReady {
			return h
		}
	}
	return h
}

// SkipTarget computes how far the loop may jump after ticking cycle
// now: the machine's combined wake hint, capped at limit (the cycle at
// which the run loop itself must wake, e.g. the watchdog deadline).
// It returns now+1 — no skip — unless every component is idle or
// timed-waiting with a wake strictly past now+1.
func (k *Kernel) SkipTarget(now uint64, limit uint64) uint64 {
	next := now + 1
	h := k.NextWake(now)
	if h.Kind != WakeTimed || h.At <= next {
		return next
	}
	target := h.At
	if target > limit {
		target = limit
	}
	if target <= next {
		return next
	}
	return target
}

// OnSkip records that cycles [from, to) were elided and lets every
// Skipper component apply its per-cycle bookkeeping for the span.
func (k *Kernel) OnSkip(from, to uint64) {
	if to <= from {
		return
	}
	k.Skipped += to - from
	for _, c := range k.comps {
		if s, ok := c.(Skipper); ok {
			s.OnSkip(from, to)
		}
	}
}
