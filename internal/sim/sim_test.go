package sim

import "testing"

func TestHintEarliest(t *testing.T) {
	cases := []struct {
		a, b, want Hint
	}{
		{Idle(), Idle(), Idle()},
		{Idle(), WakeAt(10), WakeAt(10)},
		{WakeAt(10), Idle(), WakeAt(10)},
		{WakeAt(10), WakeAt(5), WakeAt(5)},
		{WakeAt(5), WakeAt(10), WakeAt(5)},
		{ReadyNow(), WakeAt(10), ReadyNow()},
		{WakeAt(10), ReadyNow(), ReadyNow()},
		{ReadyNow(), Idle(), ReadyNow()},
		{Idle(), ReadyNow(), ReadyNow()},
	}
	for _, c := range cases {
		if got := c.a.Earliest(c.b); got != c.want {
			t.Errorf("%v.Earliest(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// fake is a minimal Component with a scripted hint. It is not a
// Watcher, so it exercises the conservative fallback paths.
type fake struct {
	name string
	hint Hint
	prog uint64

	ticks []uint64
	skips []ated
}

type ated struct{ from, to uint64 }

func (f *fake) Name() string             { return f.name }
func (f *fake) Tick(now uint64) error    { f.ticks = append(f.ticks, now); return nil }
func (f *fake) NextWake(now uint64) Hint { return f.hint }
func (f *fake) Progress() uint64         { return f.prog }
func (f *fake) OnSkip(from, to uint64)   { f.skips = append(f.skips, ated{from, to}) }

// watched adds a watch signature, modeling a component whose inputs
// are guarded by signals.
type watched struct {
	fake
	sig Signal
}

func (w *watched) WatchSig() uint64 { return w.sig.Value() }

func TestKernelProgress(t *testing.T) {
	var k Kernel
	k.Register(&fake{name: "a", prog: 3})
	k.Register(&fake{name: "b", prog: 4})
	if got := k.Progress(); got != 7 {
		t.Errorf("Progress() = %d, want 7", got)
	}
}

// tick runs one kernel cycle over the registry the way Machine.Step
// does: ShouldTick gate, lazy replay, tick, snapshot.
func tick(t *testing.T, k *Kernel, now uint64) {
	t.Helper()
	for i, c := range k.Components() {
		if !k.ShouldTick(i, now) {
			k.Stats.CompSleeps++
			continue
		}
		k.BeforeTick(i, now)
		if err := c.Tick(now); err != nil {
			t.Fatalf("tick %s at %d: %v", c.Name(), now, err)
		}
		k.AfterTick(i, now)
	}
	k.Stats.Cycles++
}

func TestKernelShouldTick(t *testing.T) {
	var k Kernel
	w := &watched{fake: fake{name: "w", hint: Idle()}}
	u := &fake{name: "u", hint: Idle()}
	tm := &fake{name: "t", hint: WakeAt(5)}
	k.Register(w)
	k.Register(u)
	k.Register(tm)

	// Cycle 0: fresh registrations default to Ready — everyone ticks.
	tick(t, &k, 0)
	for _, f := range []*fake{&w.fake, u, tm} {
		if len(f.ticks) != 1 {
			t.Fatalf("%s ticked %v on the first cycle", f.name, f.ticks)
		}
	}

	// Cycle 1: the watcher sleeps (Idle, signature unchanged), the
	// unwatched Idle component must still tick (no way to re-validate),
	// the timed component sleeps until cycle 5.
	tick(t, &k, 1)
	if len(w.ticks) != 1 {
		t.Errorf("watcher ticked %v; want asleep at cycle 1", w.ticks)
	}
	if len(u.ticks) != 2 {
		t.Errorf("unwatched idle component ticks %v; must tick every cycle", u.ticks)
	}
	if len(tm.ticks) != 1 {
		t.Errorf("timed component ticked %v; want asleep until 5", tm.ticks)
	}

	// A signal raise wakes the watcher on the next cycle and is counted.
	w.sig.Raise()
	tick(t, &k, 2)
	if len(w.ticks) != 2 || w.ticks[1] != 2 {
		t.Errorf("watcher ticks %v; want woken at cycle 2", w.ticks)
	}
	if k.Stats.SigWakes != 1 {
		t.Errorf("SigWakes = %d, want 1", k.Stats.SigWakes)
	}

	// The timed component wakes exactly at its deadline.
	for now := uint64(3); now <= 5; now++ {
		tick(t, &k, now)
	}
	if len(tm.ticks) != 2 || tm.ticks[1] != 5 {
		t.Errorf("timed component ticks %v; want second tick at 5", tm.ticks)
	}
}

func TestKernelLazyReplay(t *testing.T) {
	var k Kernel
	w := &watched{fake: fake{name: "w", hint: Idle()}}
	k.Register(w)
	tick(t, &k, 0) // ticks, sleeps afterwards
	for now := uint64(1); now < 4; now++ {
		tick(t, &k, now) // asleep: cycles 1,2,3 accumulate
	}
	w.sig.Raise()
	tick(t, &k, 4)
	if len(w.skips) != 1 || w.skips[0] != (ated{1, 4}) {
		t.Errorf("replayed spans %v, want [{1 4}]", w.skips)
	}
	if len(w.ticks) != 2 || w.ticks[1] != 4 {
		t.Errorf("ticks %v, want second tick at 4", w.ticks)
	}
	// Outstanding sleep at run end is replayed by Flush, exactly once.
	tick(t, &k, 5) // asleep again (signature re-snapshotted at 4)
	k.Flush(6)
	if len(w.skips) != 2 || w.skips[1] != (ated{5, 6}) {
		t.Errorf("flushed spans %v, want [{1 4} {5 6}]", w.skips)
	}
	k.Flush(6) // idempotent: cursors advanced
	if len(w.skips) != 2 {
		t.Errorf("second Flush replayed again: %v", w.skips)
	}
}

func TestKernelNextWake(t *testing.T) {
	const now = 10
	t.Run("ready dominates", func(t *testing.T) {
		var k Kernel
		k.Register(&fake{name: "a", hint: ReadyNow()})
		k.Register(&fake{name: "b", hint: WakeAt(500)})
		seed(t, &k, now)
		if h := k.NextWake(now); h.Kind != WakeReady {
			t.Errorf("NextWake = %v, want ready", h)
		}
	})
	t.Run("unwatched idle vetoes", func(t *testing.T) {
		var k Kernel
		k.Register(&fake{name: "a", hint: Idle()})
		seed(t, &k, now)
		if h := k.NextWake(now); h.Kind != WakeReady {
			t.Errorf("NextWake = %v, want ready (cannot prove frozen)", h)
		}
	})
	t.Run("watched idle plus timed jumps", func(t *testing.T) {
		var k Kernel
		k.Register(&watched{fake: fake{name: "w", hint: Idle()}})
		k.Register(&fake{name: "t", hint: WakeAt(500)})
		seed(t, &k, now)
		if h := k.NextWake(now); h != WakeAt(500) {
			t.Errorf("NextWake = %v, want WakeAt(500)", h)
		}
	})
	t.Run("signature change vetoes", func(t *testing.T) {
		var k Kernel
		w := &watched{fake: fake{name: "w", hint: Idle()}}
		k.Register(w)
		k.Register(&fake{name: "t", hint: WakeAt(500)})
		seed(t, &k, now)
		w.sig.Raise()
		if h := k.NextWake(now); h.Kind != WakeReady {
			t.Errorf("NextWake = %v, want ready after raise", h)
		}
	})
	t.Run("due next cycle is no jump", func(t *testing.T) {
		var k Kernel
		k.Register(&fake{name: "t", hint: WakeAt(now + 1)})
		seed(t, &k, now)
		if h := k.NextWake(now); h.Kind != WakeReady {
			t.Errorf("NextWake = %v, want ready (due next cycle)", h)
		}
	})
	t.Run("all watched idle is idle", func(t *testing.T) {
		var k Kernel
		k.Register(&watched{fake: fake{name: "w", hint: Idle()}})
		seed(t, &k, now)
		if h := k.NextWake(now); h.Kind != WakeIdle {
			t.Errorf("NextWake = %v, want idle", h)
		}
	})
}

// seed runs one cycle so every component's hint and signature are
// snapshotted (NextWake reads the cached state, as the run loop does
// after Step).
func seed(t *testing.T, k *Kernel, now uint64) {
	t.Helper()
	tick(t, k, now)
}

func TestKernelJump(t *testing.T) {
	var k Kernel
	k.Register(&fake{name: "a"})
	k.Jump(11, 40)
	k.Jump(50, 60)
	k.Jump(60, 60) // empty span: no-op
	if got := k.Skipped(); got != (40-11)+(60-50) {
		t.Errorf("Skipped() = %d, want %d", got, (40-11)+(60-50))
	}
	if k.Stats.Jumps != 2 {
		t.Errorf("Jumps = %d, want 2", k.Stats.Jumps)
	}
}

func TestSchedStatsAddSpan(t *testing.T) {
	var s SchedStats
	s.AddSpan(1)
	s.AddSpan(2)
	s.AddSpan(3)
	s.AddSpan(4)
	s.AddSpan(1 << 20)
	if s.Spans != 5 || s.SpanCycles != 1+2+3+4+(1<<20) {
		t.Fatalf("Spans=%d SpanCycles=%d", s.Spans, s.SpanCycles)
	}
	if s.SpanHist[0] != 1 || s.SpanHist[1] != 2 || s.SpanHist[2] != 1 {
		t.Errorf("low buckets %v", s.SpanHist[:3])
	}
	if s.SpanHist[15] != 1 {
		t.Errorf("overflow bucket = %d, want 1 (clamped)", s.SpanHist[15])
	}
}
