package sim

import "testing"

func TestHintEarliest(t *testing.T) {
	cases := []struct {
		a, b, want Hint
	}{
		{Idle(), Idle(), Idle()},
		{Idle(), WakeAt(10), WakeAt(10)},
		{WakeAt(10), Idle(), WakeAt(10)},
		{WakeAt(10), WakeAt(5), WakeAt(5)},
		{WakeAt(5), WakeAt(10), WakeAt(5)},
		{ReadyNow(), WakeAt(10), ReadyNow()},
		{WakeAt(10), ReadyNow(), ReadyNow()},
		{ReadyNow(), Idle(), ReadyNow()},
		{Idle(), ReadyNow(), ReadyNow()},
	}
	for _, c := range cases {
		if got := c.a.Earliest(c.b); got != c.want {
			t.Errorf("%v.Earliest(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// fake is a minimal Component with a scripted hint.
type fake struct {
	name string
	hint Hint
	prog uint64

	skips []ated
}

type ated struct{ from, to uint64 }

func (f *fake) Name() string             { return f.name }
func (f *fake) Tick(now uint64) error    { return nil }
func (f *fake) NextWake(now uint64) Hint { return f.hint }
func (f *fake) Progress() uint64         { return f.prog }
func (f *fake) OnSkip(from, to uint64)   { f.skips = append(f.skips, ated{from, to}) }

func TestKernelProgress(t *testing.T) {
	var k Kernel
	k.Register(&fake{name: "a", prog: 3})
	k.Register(&fake{name: "b", prog: 4})
	if got := k.Progress(); got != 7 {
		t.Errorf("Progress() = %d, want 7", got)
	}
}

func TestKernelSkipTarget(t *testing.T) {
	const limit = 1000
	cases := []struct {
		name  string
		hints []Hint
		want  uint64 // expected SkipTarget(now=10, limit)
	}{
		{"all idle", []Hint{Idle(), Idle()}, 11},
		{"one ready", []Hint{Idle(), ReadyNow()}, 11},
		{"ready beats timed", []Hint{WakeAt(500), ReadyNow()}, 11},
		{"timed", []Hint{Idle(), WakeAt(500)}, 500},
		{"earliest timed wins", []Hint{WakeAt(500), WakeAt(40)}, 40},
		{"next cycle is no skip", []Hint{WakeAt(11)}, 11},
		{"past wake is no skip", []Hint{WakeAt(9)}, 11},
		{"clamped to limit", []Hint{WakeAt(5000)}, limit},
	}
	for _, c := range cases {
		var k Kernel
		for i, h := range c.hints {
			k.Register(&fake{name: string(rune('a' + i)), hint: h})
		}
		if got := k.SkipTarget(10, limit); got != c.want {
			t.Errorf("%s: SkipTarget = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestKernelOnSkip(t *testing.T) {
	var k Kernel
	a := &fake{name: "a"}
	k.Register(a)
	k.OnSkip(11, 40)
	k.OnSkip(50, 60)
	if k.Skipped != (40-11)+(60-50) {
		t.Errorf("Skipped = %d, want %d", k.Skipped, (40-11)+(60-50))
	}
	if len(a.skips) != 2 || a.skips[0] != (ated{11, 40}) || a.skips[1] != (ated{50, 60}) {
		t.Errorf("skipper saw %v", a.skips)
	}
}
