// Package trace records and renders execution timelines in the style of
// the paper's Figures 4(b) and 6: per-resource activity lanes (control
// core, stream engines, CGRA) and per-stream lifetime bars showing when
// each command was enqueued, dispatched and completed.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one stream command's lifetime.
type Span struct {
	ID        int
	Label     string
	Enqueued  uint64
	Issued    uint64
	Completed uint64
	Done      bool
}

// Recorder accumulates events during a run. The zero Recorder is
// disabled; NewRecorder returns an enabled one. Lane activity is
// recorded up to Limit cycles (spans are always recorded).
type Recorder struct {
	Limit uint64

	laneOrder []string
	lanes     map[string][]bool
	spans     map[int]*Span
	order     []int
	lastCycle uint64
	// any distinguishes "nothing recorded" from "everything happened at
	// cycle 0" — lastCycle==0 alone conflates the two.
	any bool
}

// NewRecorder returns a recorder capturing lane activity for the first
// limit cycles.
func NewRecorder(limit uint64) *Recorder {
	return &Recorder{
		Limit: limit,
		lanes: map[string][]bool{},
		spans: map[int]*Span{},
	}
}

// Mark records activity on a lane at a cycle.
func (r *Recorder) Mark(lane string, cycle uint64) {
	if r == nil || cycle >= r.Limit {
		return
	}
	r.any = true
	if cycle > r.lastCycle {
		r.lastCycle = cycle
	}
	bits, ok := r.lanes[lane]
	if !ok {
		r.laneOrder = append(r.laneOrder, lane)
	}
	for uint64(len(bits)) <= cycle {
		bits = append(bits, false)
	}
	bits[cycle] = true
	r.lanes[lane] = bits
}

// Issued records a stream command's issue, with the cycle it was
// enqueued by the control core.
func (r *Recorder) Issued(id int, label string, enqueued, issued uint64) {
	if r == nil {
		return
	}
	r.spans[id] = &Span{ID: id, Label: label, Enqueued: enqueued, Issued: issued}
	r.order = append(r.order, id)
	r.any = true
	if issued > r.lastCycle {
		r.lastCycle = issued
	}
}

// Completed records a stream command's completion.
func (r *Recorder) Completed(id int, cycle uint64) {
	if r == nil {
		return
	}
	if s, ok := r.spans[id]; ok {
		s.Completed = cycle
		s.Done = true
		r.any = true
		if cycle > r.lastCycle {
			r.lastCycle = cycle
		}
	}
}

// Spans returns the recorded stream lifetimes in issue order.
func (r *Recorder) Spans() []Span {
	out := make([]Span, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, *r.spans[id])
	}
	return out
}

// Gantt renders the timeline: activity lanes on top (one character per
// bucket of cycles) and stream lifetime bars below, Figure 4(b) style:
//
//	'·' enqueued, '=' dispatched and active, '>' completion.
func (r *Recorder) Gantt(width int) string {
	if r == nil || !r.any {
		return "(no trace recorded)\n"
	}
	if width < 20 {
		width = 20
	}
	span := r.lastCycle + 1
	perCol := (span + uint64(width) - 1) / uint64(width)
	col := func(cycle uint64) int { return int(cycle / perCol) }

	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d cycles, %d cycles/column\n\n", span, perCol)

	lanes := append([]string(nil), r.laneOrder...)
	sort.Strings(lanes)
	nameW := 10
	for _, l := range lanes {
		if len(l) > nameW {
			nameW = len(l)
		}
	}
	for _, lane := range lanes {
		bits := r.lanes[lane]
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for c, on := range bits {
			if on {
				row[col(uint64(c))] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, lane, row)
	}

	if len(r.order) > 0 {
		fmt.Fprintf(&b, "\nstreams (first %d):\n", len(r.order))
	}
	for _, id := range r.order {
		s := r.spans[id]
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		end := r.lastCycle
		if s.Done {
			end = s.Completed
		}
		for c := s.Enqueued; c <= end && col(c) < width; c += perCol {
			switch {
			case c < s.Issued:
				row[col(c)] = '.'
			default:
				row[col(c)] = '='
			}
		}
		if s.Done && col(s.Completed) < width {
			row[col(s.Completed)] = '>'
		}
		fmt.Fprintf(&b, "%-*s |%s| %s\n", nameW, fmt.Sprintf("#%d", s.ID), row, s.Label)
	}
	return b.String()
}
