package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Mark("x", 1)
	r.Issued(1, "cmd", 0, 1)
	r.Completed(1, 5)
	if got := r.Gantt(80); !strings.Contains(got, "no trace") {
		t.Errorf("nil Gantt = %q", got)
	}
}

// TestGanttCycleZeroActivity: a run whose every event lands on cycle 0
// must still render — lastCycle==0 used to be conflated with "nothing
// recorded".
func TestGanttCycleZeroActivity(t *testing.T) {
	r := NewRecorder(100)
	r.Mark("core", 0)
	out := r.Gantt(40)
	if strings.Contains(out, "no trace") {
		t.Fatalf("cycle-0 activity rendered as empty:\n%s", out)
	}
	if !strings.Contains(out, "core") {
		t.Errorf("lane missing:\n%s", out)
	}

	// Same for a span issued and completed at cycle 0.
	r2 := NewRecorder(100)
	r2.Issued(1, "SD_Const_Port(...)", 0, 0)
	r2.Completed(1, 0)
	if out := r2.Gantt(40); strings.Contains(out, "no trace") {
		t.Fatalf("cycle-0 span rendered as empty:\n%s", out)
	}

	// A recorder with nothing recorded still reports that.
	if out := NewRecorder(100).Gantt(40); !strings.Contains(out, "no trace") {
		t.Errorf("empty recorder rendered a timeline:\n%s", out)
	}
}

func TestSpanLifecycle(t *testing.T) {
	r := NewRecorder(100)
	r.Issued(1, "SD_Mem_Port", 2, 5)
	r.Issued(2, "SD_Barrier_All", 3, 7)
	r.Completed(1, 20)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Enqueued != 2 || spans[0].Issued != 5 || !spans[0].Done || spans[0].Completed != 20 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Done {
		t.Error("span 2 should be open")
	}
}

func TestLaneLimit(t *testing.T) {
	r := NewRecorder(10)
	r.Mark("MSE", 5)
	r.Mark("MSE", 50) // beyond limit: dropped
	if r.lastCycle != 5 {
		t.Errorf("lastCycle = %d", r.lastCycle)
	}
}

func TestGanttRendering(t *testing.T) {
	r := NewRecorder(1000)
	for c := uint64(0); c < 40; c++ {
		r.Mark("core", c)
	}
	r.Mark("CGRA", 90)
	r.Issued(1, "SD_Mem_Port(...)", 0, 2)
	r.Completed(1, 80)
	out := r.Gantt(40)
	for _, want := range []string{"core", "CGRA", "#1", "SD_Mem_Port", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt missing %q:\n%s", want, out)
		}
	}
	// Completion marker present.
	if !strings.Contains(out, ">") {
		t.Error("Gantt missing completion marker")
	}
	// Tiny widths are clamped rather than crashing.
	if r.Gantt(1) == "" {
		t.Error("narrow Gantt empty")
	}
}

func TestGanttWithinMachineTrace(t *testing.T) {
	// Exercised end to end by core tests; here just check bucket scaling.
	r := NewRecorder(1 << 20)
	r.Mark("x", 999_999)
	out := r.Gantt(50)
	if !strings.Contains(out, "cycles/column") {
		t.Error("header missing")
	}
}
