package dispatch

import (
	"testing"

	"softbrain/internal/engine"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/port"
	"softbrain/internal/scratch"
)

type rig struct {
	d     *Dispatcher
	mse   *engine.MSE
	sse   *engine.SSE
	rse   *engine.RSE
	ports *engine.Ports
	sys   *mem.System
	pad   *scratch.Pad
	now   uint64
}

func mustPort(t *testing.T, name string, width, depth int) *port.Queue {
	t.Helper()
	q, err := port.New(name, width, depth)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sys, err := mem.NewSystem(mem.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	var in, out []*port.Queue
	for i := 0; i < 4; i++ {
		in = append(in, mustPort(t, "in", 8, 64))
		out = append(out, mustPort(t, "out", 8, 64))
	}
	ports := engine.NewPorts(in, out)
	padBuf := engine.NewPadWriteBuf(8)
	pad := scratch.New(4096)
	r := &rig{sys: sys, pad: pad, ports: ports}
	r.mse = engine.NewMSE(sys, ports, padBuf, 8, nil)
	r.sse = engine.NewSSE(pad, ports, padBuf, 8)
	r.rse = engine.NewRSE(ports, 8)
	r.d = New(r.mse, r.sse, r.rse, 4, 4, 8)
	return r
}

func (r *rig) tick(t *testing.T) {
	t.Helper()
	if err := r.d.Tick(r.now); err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if err := r.mse.Tick(r.now); err != nil {
		t.Fatal(err)
	}
	if err := r.sse.Tick(r.now); err != nil {
		t.Fatal(err)
	}
	if err := r.rse.Tick(r.now); err != nil {
		t.Fatal(err)
	}
	r.now++
}

func (r *rig) run(t *testing.T, limit int, cond func() bool) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if cond() {
			return
		}
		r.tick(t)
	}
	if !cond() {
		t.Fatalf("condition not reached in %d cycles", limit)
	}
}

func TestSamePortStreamsSerialize(t *testing.T) {
	r := newRig(t)
	r.sys.Mem.Write(0, make([]byte, 256))
	must(t, r.d.Enqueue(isa.MemPort{Src: isa.Linear(0, 128), Dst: 0}))
	must(t, r.d.Enqueue(isa.MemPort{Src: isa.Linear(128, 128), Dst: 0}))
	r.tick(t) // issues first
	r.tick(t) // second must wait: port 0 writer is held
	if got := r.mse.Active(); got != 1 {
		t.Errorf("second same-port stream issued concurrently (%d active)", got)
	}
	r.run(t, 5000, func() bool {
		if n := r.ports.In[0].Len(); n > 0 {
			r.ports.In[0].Pop(n)
		}
		return r.d.Idle()
	})
	if r.d.Issued != 2 {
		t.Errorf("Issued = %d, want 2", r.d.Issued)
	}
}

func TestDistinctPortStreamsOverlap(t *testing.T) {
	r := newRig(t)
	r.sys.Mem.Write(0, make([]byte, 256))
	must(t, r.d.Enqueue(isa.MemPort{Src: isa.Linear(0, 128), Dst: 0}))
	must(t, r.d.Enqueue(isa.MemPort{Src: isa.Linear(128, 128), Dst: 1}))
	r.tick(t)
	r.tick(t)
	if got := r.mse.Active(); got != 2 {
		t.Errorf("distinct-port streams did not overlap (%d active)", got)
	}
}

func TestIndirectRolesOverlapOnOnePort(t *testing.T) {
	r := newRig(t)
	// Port 3 is written by a MemPort stream (indices) and concurrently
	// read by an IndPortPort stream: different roles, same port.
	for i := uint64(0); i < 8; i++ {
		r.sys.Mem.WriteU64(0x100+8*i, i) // indices 0..7
		r.sys.Mem.WriteU64(0x800+8*i, 40+i)
	}
	must(t, r.d.Enqueue(isa.MemPort{Src: isa.Linear(0x100, 64), Dst: 3}))
	must(t, r.d.Enqueue(isa.IndPortPort{
		Idx: 3, IdxElem: isa.Elem64, Offset: 0x800, Scale: 8,
		DataElem: isa.Elem64, Count: 8, Dst: 0,
	}))
	r.tick(t)
	r.tick(t)
	if got := r.mse.Active(); got != 2 {
		t.Fatalf("index and indirect streams did not overlap (%d active)", got)
	}
	r.run(t, 5000, func() bool { return r.d.Idle() })
	got := r.ports.In[0].PopWords(8)
	for i, v := range got {
		if v != uint64(40+i) {
			t.Errorf("gather[%d] = %d, want %d", i, v, 40+i)
		}
	}
}

func TestScratchWriteBarrier(t *testing.T) {
	r := newRig(t)
	r.sys.Mem.Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	must(t, r.d.Enqueue(isa.MemScratch{Src: isa.Linear(0, 8), ScratchAddr: 0}))
	must(t, r.d.Enqueue(isa.BarrierScratchWr{}))
	must(t, r.d.Enqueue(isa.ScratchPort{Src: isa.Linear(0, 8), Dst: 0}))
	// The read must not issue before the write completes; correctness is
	// visible in the data (pad starts zeroed).
	r.run(t, 5000, func() bool { return r.d.Idle() && r.ports.In[0].Len() == 8 })
	data := r.ports.In[0].Pop(8)
	for i, b := range data {
		if b != byte(i+1) {
			t.Fatalf("read overtook barrier: byte %d = %d", i, b)
		}
	}
	if r.d.BarrierCycles == 0 {
		t.Error("barrier never had to wait; test is vacuous")
	}
}

func TestBarrierAllBlocksCore(t *testing.T) {
	r := newRig(t)
	r.sys.Mem.Write(0, make([]byte, 64))
	must(t, r.d.Enqueue(isa.MemPort{Src: isa.Linear(0, 64), Dst: 0}))
	must(t, r.d.Enqueue(isa.BarrierAll{}))
	if !r.d.BlocksCore() {
		t.Error("BarrierAll in queue should block the core")
	}
	r.run(t, 5000, func() bool {
		if n := r.ports.In[0].Len(); n > 0 {
			r.ports.In[0].Pop(n)
		}
		return r.d.Idle()
	})
	if r.d.BlocksCore() {
		t.Error("core still blocked after completion")
	}
}

func TestQueueDepthBlocksCore(t *testing.T) {
	r := newRig(t)
	// Fill the queue behind an unsatisfiable stream (no data ever).
	must(t, r.d.Enqueue(isa.PortMem{Src: 0, Dst: isa.Linear(0, 64)}))
	for i := 0; i < 7; i++ {
		must(t, r.d.Enqueue(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: 1}))
	}
	if r.d.CanEnqueue() {
		t.Error("queue should be full")
	}
	if !r.d.BlocksCore() {
		t.Error("full queue should block the core")
	}
	if err := r.d.Enqueue(isa.BarrierAll{}); err == nil {
		t.Error("enqueue into full queue should fail")
	}
}

func TestEnqueueValidatesPorts(t *testing.T) {
	r := newRig(t)
	if err := r.d.Enqueue(isa.MemPort{Src: isa.Linear(0, 8), Dst: 200}); err == nil {
		t.Error("out-of-range input port accepted")
	}
	if err := r.d.Enqueue(isa.CleanPort{Src: 99, Elem: isa.Elem64, Count: 1}); err == nil {
		t.Error("out-of-range output port accepted")
	}
}

func TestResourceStallCounted(t *testing.T) {
	r := newRig(t)
	r.sys.Mem.Write(0, make([]byte, 1024))
	must(t, r.d.Enqueue(isa.MemPort{Src: isa.Linear(0, 512), Dst: 0}))
	must(t, r.d.Enqueue(isa.MemPort{Src: isa.Linear(512, 512), Dst: 0}))
	r.run(t, 10000, func() bool {
		if n := r.ports.In[0].Len(); n > 0 {
			r.ports.In[0].Pop(n)
		}
		return r.d.Idle()
	})
	if r.d.ResourceStall == 0 {
		t.Error("expected resource stalls for same-port streams")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
