// Package dispatch implements the stream dispatcher of Section 4.2: the
// unit that enforces architectural (resource) dependences between stream
// commands and coordinates the stream engines. It tracks vector-port and
// stream-engine state in scoreboards, issues commands in program order
// when their resources are free, and implements barrier semantics.
package dispatch

import (
	"fmt"
	"sort"

	"softbrain/internal/engine"
	"softbrain/internal/isa"
	"softbrain/internal/obs"
	"softbrain/internal/sim"
	"softbrain/internal/trace"
)

// engineKind selects which stream-engine pipeline executes a command.
type engineKind uint8

const (
	engMSERead engineKind = iota
	engMSEWrite
	engSSERead
	engSSEWrite
	engRSE
	engBarrier
)

// resources lists the scoreboard entries a command needs. A port may be
// held in the writer role (a stream producing into it) and the reader
// role (a stream consuming from it) by different streams simultaneously —
// that is how index streams feed indirect streams concurrently.
type resources struct {
	engine    engineKind
	inWriters []int // input ports written
	inReaders []int // input (indirect) ports consumed
	outReader int   // output port consumed, -1 if none
}

// classify derives the resource needs of a command.
func classify(cmd isa.Command) (resources, error) {
	r := resources{outReader: -1}
	var err error
	r.inWriters, r.inReaders, r.outReader, err = CommandPorts(cmd)
	if err != nil {
		return r, err
	}
	switch cmd.(type) {
	case isa.Config, isa.MemScratch, isa.MemPort, isa.IndPortPort:
		r.engine = engMSERead
	case isa.ScratchPort:
		r.engine = engSSERead
	case isa.ConstPort, isa.PortPort, isa.CleanPort:
		r.engine = engRSE
	case isa.PortScratch:
		r.engine = engSSEWrite
	case isa.PortMem, isa.IndPortMem:
		r.engine = engMSEWrite
	case isa.BarrierScratchRd, isa.BarrierScratchWr, isa.BarrierAll:
		r.engine = engBarrier
	}
	return r, nil
}

// CommandPorts lists the vector ports cmd touches: input ports it
// writes, input ports it consumes for indirect indices, and the output
// port it reads (-1 when none). The core's hang diagnosis uses it to
// find the future supplier of a starved port among queued and unfetched
// commands.
func CommandPorts(cmd isa.Command) (inWriters, inReaders []int, outReader int, err error) {
	outReader = -1
	switch c := cmd.(type) {
	case isa.Config, isa.MemScratch,
		isa.BarrierScratchRd, isa.BarrierScratchWr, isa.BarrierAll:
	case isa.MemPort:
		inWriters = []int{int(c.Dst)}
	case isa.IndPortPort:
		inWriters = []int{int(c.Dst)}
		inReaders = []int{int(c.Idx)}
	case isa.ScratchPort:
		inWriters = []int{int(c.Dst)}
	case isa.ConstPort:
		inWriters = []int{int(c.Dst)}
	case isa.PortPort:
		inWriters = []int{int(c.Dst)}
		outReader = int(c.Src)
	case isa.CleanPort:
		outReader = int(c.Src)
	case isa.PortScratch:
		outReader = int(c.Src)
	case isa.PortMem:
		outReader = int(c.Src)
	case isa.IndPortMem:
		inReaders = []int{int(c.Idx)}
		outReader = int(c.Src)
	default:
		err = fmt.Errorf("dispatch: unknown command %v", cmd)
	}
	return inWriters, inReaders, outReader, err
}

// holder is one stream occupying a scoreboard entry. A draining holder
// has all its memory requests in flight (the "all-requests-in-flight"
// state); its port may be re-issued to a successor memory stream, whose
// data the MSE delivers strictly after the drainer's.
type holder struct {
	id       int
	draining bool
}

// Dispatcher owns the command queue and the scoreboards.
type Dispatcher struct {
	mse *engine.MSE
	sse *engine.SSE
	rse *engine.RSE

	numIn, numOut int
	queueDepth    int
	queue         []queued
	now           uint64

	inWriter  map[int][]holder // port -> holding streams (youngest last)
	inReader  map[int]int
	outReader map[int]int
	active    map[int]resources
	nextID    int

	configActive bool
	configID     int

	// InOrderIssue restricts dispatch to the queue head (disables the
	// dispatch window); an ablation switch.
	InOrderIssue bool

	// Tracer, when set, records stream lifetimes (see internal/trace).
	Tracer *trace.Recorder

	// Lat, installed by EnableLatency, observes each stream's
	// issue-to-retire latency. issuedAt exists only while enabled, so
	// the tick path allocates nothing when metrics are off.
	Lat      *obs.Histogram
	issuedAt map[int]uint64

	// Statistics.
	Issued        uint64
	BarrierCycles uint64 // cycles a barrier held the queue head
	ResourceStall uint64 // cycles the head command waited on resources
	StallByKind   map[isa.Kind]uint64

	// Per-barrier drain accounting, keyed by the trace position the
	// core passed to EnqueueAt (-1 entries are not tracked). A barrier
	// is recorded at enqueue time so zero-drain barriers appear too.
	drainByPos map[int]uint64
	drainKind  map[int]isa.Kind

	// Wake-hint state (see NextWake / OnSkip). tickProgress records
	// whether the last Tick changed scoreboard or queue state;
	// queueAfter is the queue length when it returned (the core
	// enqueues after the dispatcher in machine tick order, so a longer
	// queue means new work). The repeat fields record which per-cycle
	// stall counters the last Tick incremented, so OnSkip can replay
	// them exactly over a skipped span in which the same stall holds.
	tickProgress   bool
	queueAfter     int
	repeatBarrier  bool
	repeatPos      int
	repeatResource bool
	repeatKind     isa.Kind

	// Wake signals (see sim.Signal). EnqSeq counts accepted enqueues —
	// the dispatcher's own watch includes it so a command arriving from
	// the core wakes a sleeping dispatcher. StateVer counts every
	// scoreboard or queue change — the control core watches it, since
	// BlocksCore can only clear when the dispatcher changes state.
	EnqSeq   sim.Signal
	StateVer sim.Signal

	// Scan stamps for the dispatch window's port-conflict check: a port
	// stamped with the current generation is referenced by an older
	// unissued command. Replaces a per-Tick map allocation.
	touchIn  []uint64
	touchOut []uint64
	touchGen uint64
}

// BarrierDrain is one barrier's drain cost: the cycles it held the
// queue head waiting for in-flight streams, keyed by trace position.
type BarrierDrain struct {
	Pos    int
	Kind   isa.Kind
	Cycles uint64
}

// New builds a dispatcher over the three engines.
func New(mse *engine.MSE, sse *engine.SSE, rse *engine.RSE, numIn, numOut, queueDepth int) *Dispatcher {
	return &Dispatcher{
		mse: mse, sse: sse, rse: rse,
		numIn: numIn, numOut: numOut, queueDepth: queueDepth,
		inWriter:    map[int][]holder{},
		inReader:    map[int]int{},
		outReader:   map[int]int{},
		active:      map[int]resources{},
		nextID:      1,
		StallByKind: map[isa.Kind]uint64{},
		touchIn:     make([]uint64, numIn),
		touchOut:    make([]uint64, numOut),
	}
}

// EnableLatency installs a histogram observing each stream's
// issue-to-retire latency in cycles.
func (d *Dispatcher) EnableLatency(h *obs.Histogram) {
	d.Lat = h
	d.issuedAt = map[int]uint64{}
}

// CanEnqueue reports whether the command queue has room; when it does
// not, the control core stalls.
func (d *Dispatcher) CanEnqueue() bool { return len(d.queue) < d.queueDepth }

// Enqueue accepts a command from the control core. The command's ports
// are validated here, at the architectural boundary.
func (d *Dispatcher) Enqueue(cmd isa.Command) error { return d.EnqueueAt(cmd, -1, d.now) }

// EnqueueAt is Enqueue with the command's trace position and the
// current cycle attached: the position keys barrier-drain attribution
// (see BarrierDrains), and the cycle stamps the command's enqueue time
// for the trace — the core may enqueue on a cycle the dispatcher slept
// through, so the dispatcher's own clock can be stale. Pass -1 when the
// position is unknown.
func (d *Dispatcher) EnqueueAt(cmd isa.Command, pos int, now uint64) error {
	if !d.CanEnqueue() {
		return fmt.Errorf("dispatch: command queue full")
	}
	r, err := classify(cmd)
	if err != nil {
		return err
	}
	for _, p := range r.inWriters {
		if p < 0 || p >= d.numIn {
			return fmt.Errorf("dispatch: %v references input port %d of %d", cmd, p, d.numIn)
		}
	}
	for _, p := range r.inReaders {
		if p < 0 || p >= d.numIn {
			return fmt.Errorf("dispatch: %v references input port %d of %d", cmd, p, d.numIn)
		}
	}
	if r.outReader >= d.numOut {
		return fmt.Errorf("dispatch: %v references output port %d of %d", cmd, r.outReader, d.numOut)
	}
	if r.engine == engBarrier && pos >= 0 {
		if d.drainByPos == nil {
			d.drainByPos = map[int]uint64{}
			d.drainKind = map[int]isa.Kind{}
		}
		if _, ok := d.drainByPos[pos]; !ok {
			d.drainByPos[pos] = 0
			d.drainKind[pos] = cmd.Kind()
		}
	}
	d.queue = append(d.queue, queued{cmd: cmd, res: r, at: now, pos: pos})
	d.EnqSeq.Raise()
	return nil
}

// BarrierDrains reports the per-barrier drain cycles accumulated so
// far, sorted by trace position. Only barriers enqueued via EnqueueAt
// with a non-negative position appear; zero-drain barriers are
// included so a profile distinguishes "free" from "never executed".
func (d *Dispatcher) BarrierDrains() []BarrierDrain {
	out := make([]BarrierDrain, 0, len(d.drainByPos))
	for pos, cy := range d.drainByPos {
		out = append(out, BarrierDrain{Pos: pos, Kind: d.drainKind[pos], Cycles: cy})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// BlocksCore reports whether the core must stall: the queue is full or
// an SD_Barrier_All is pending.
func (d *Dispatcher) BlocksCore() bool {
	if !d.CanEnqueue() {
		return true
	}
	for _, q := range d.queue {
		if q.cmd.Kind() == isa.KindBarrierAll {
			return true
		}
	}
	return false
}

// Idle reports whether no commands are queued or executing.
func (d *Dispatcher) Idle() bool {
	return len(d.queue) == 0 && len(d.active) == 0
}

// QueueLen is the number of commands waiting to issue.
func (d *Dispatcher) QueueLen() int { return len(d.queue) }

// Tick retires completed streams and issues at most one queued command.
// The queue is a small dispatch window: the oldest eligible command
// issues, where eligibility preserves program order per vector port (a
// younger command never bypasses an older queued command that touches
// any of the same ports) and barriers block everything behind them.
func (d *Dispatcher) Tick(now uint64) error {
	d.now = now
	d.tickProgress = false
	d.repeatBarrier, d.repeatResource = false, false
	defer func() { d.queueAfter = len(d.queue) }()
	d.retire(now)
	if len(d.queue) == 0 {
		return nil
	}
	if d.configActive {
		// A configuration is loading; the fabric must quiesce, so no
		// command may issue under it.
		return nil
	}
	d.touchGen++
	gen := d.touchGen // ports stamped gen: referenced by older unissued commands
	for i := range d.queue {
		q := &d.queue[i]
		cmd := q.cmd
		r := q.res
		if cmd.Kind() == isa.KindConfig {
			// Reconfiguration serializes: it issues only once the fabric
			// is idle, and nothing younger may start before it finishes.
			if i == 0 && len(d.active) == 0 {
				id := d.nextID
				d.nextID++
				if err := d.start(id, cmd, r.engine); err != nil {
					return err
				}
				d.active[id] = r
				d.configActive = true
				d.configID = id
				if d.Tracer != nil {
					d.Tracer.Issued(id, cmd.String(), q.at, now)
				}
				if d.issuedAt != nil {
					d.issuedAt[id] = now
				}
				d.queue = d.queue[1:]
				d.Issued++
				d.tickProgress = true
				d.StateVer.Raise()
			} else if i == 0 {
				d.ResourceStall++
				d.StallByKind[cmd.Kind()]++
				d.repeatResource, d.repeatKind = true, cmd.Kind()
			}
			return nil
		}
		if r.engine == engBarrier {
			if i == 0 && d.barrierMet(cmd.Kind()) {
				d.queue = d.queue[1:]
				d.tickProgress = true
				d.StateVer.Raise()
			} else if i == 0 {
				d.BarrierCycles++
				d.repeatBarrier, d.repeatPos = true, q.pos
				if q.pos >= 0 {
					d.drainByPos[q.pos]++
				}
			}
			// Nothing younger may pass a barrier.
			return nil
		}
		conflict := false
		for _, p := range r.inWriters {
			if d.touchIn[p] == gen {
				conflict = true
			}
			d.touchIn[p] = gen
		}
		for _, p := range r.inReaders {
			if d.touchIn[p] == gen {
				conflict = true
			}
			d.touchIn[p] = gen
		}
		if r.outReader >= 0 {
			if d.touchOut[r.outReader] == gen {
				conflict = true
			}
			d.touchOut[r.outReader] = gen
		}
		if conflict || !d.resourcesFree(r) {
			if i == 0 {
				d.ResourceStall++
				d.StallByKind[cmd.Kind()]++
				d.repeatResource, d.repeatKind = true, cmd.Kind()
				if d.InOrderIssue {
					return nil
				}
			}
			continue
		}
		id := d.nextID
		d.nextID++
		if err := d.start(id, cmd, r.engine); err != nil {
			return err
		}
		for _, p := range r.inWriters {
			d.inWriter[p] = append(d.inWriter[p], holder{id: id})
		}
		for _, p := range r.inReaders {
			d.inReader[p] = id
		}
		if r.outReader >= 0 {
			d.outReader[r.outReader] = id
		}
		d.active[id] = r
		if d.Tracer != nil {
			d.Tracer.Issued(id, cmd.String(), q.at, now)
		}
		if d.issuedAt != nil {
			d.issuedAt[id] = now
		}
		d.queue = append(d.queue[:i], d.queue[i+1:]...)
		d.Issued++
		d.tickProgress = true
		d.StateVer.Raise()
		return nil
	}
	return nil
}

// NextWake implements the sim.Component wake-hint contract (see
// docs/SIMKERNEL.md). The dispatcher has no timed state of its own: it
// is Ready while its last Tick changed anything or the core enqueued
// behind it, Idle while it is provably re-running the same stalled scan
// (an engine completing, or a skip-span replay via OnSkip, wakes it).
func (d *Dispatcher) NextWake(now uint64) sim.Hint {
	if len(d.queue) == 0 && len(d.active) == 0 {
		return sim.Idle()
	}
	if d.tickProgress || len(d.queue) != d.queueAfter {
		return sim.ReadyNow()
	}
	return sim.Idle()
}

// StallCause classifies the dispatcher's state this cycle for the
// stall attribution (see internal/obs). Unlike the engines it reports
// Busy itself — tickProgress covers retires and barrier pops that no
// monotone counter records. Skip-stable: on any cycle a skip span can
// cover, tickProgress is false (NextWake would have pinned the machine
// Ready) and the repeat flags are frozen, so the ticked and replayed
// classifications agree.
func (d *Dispatcher) StallCause(uint64) obs.Cause {
	switch {
	case len(d.queue) == 0 && len(d.active) == 0:
		return obs.CauseIdle
	case d.tickProgress:
		return obs.Busy
	case d.configActive:
		return obs.BarrierDrain // fabric quiescing under SD_Config
	case len(d.queue) == 0:
		return obs.CauseIdle // streams running; nothing left to dispatch
	case d.repeatBarrier:
		return obs.BarrierDrain
	case d.repeatResource:
		return obs.PortFull // scoreboard conflict or engine table full
	}
	return obs.CauseIdle
}

// OnSkip replays the per-cycle stall accounting over an elided span.
// The run loop skips [from, to) only when the whole machine was frozen,
// so each skipped cycle's Tick would have repeated exactly the stall
// pattern of the last executed one.
func (d *Dispatcher) OnSkip(from, to uint64) {
	dc := to - from
	if d.repeatBarrier {
		d.BarrierCycles += dc
		if d.repeatPos >= 0 {
			d.drainByPos[d.repeatPos] += dc
		}
	}
	if d.repeatResource {
		d.ResourceStall += dc
		d.StallByKind[d.repeatKind] += dc
	}
}

// queued is one command waiting in the dispatch window.
type queued struct {
	cmd isa.Command
	res resources // classified once at enqueue
	at  uint64    // enqueue cycle
	pos int       // trace position, -1 when unknown
}

func (d *Dispatcher) start(id int, cmd isa.Command, k engineKind) error {
	switch k {
	case engMSERead:
		return d.mse.StartRead(id, cmd)
	case engMSEWrite:
		return d.mse.StartWrite(id, cmd)
	case engSSERead:
		return d.sse.StartRead(id, cmd.(isa.ScratchPort))
	case engSSEWrite:
		return d.sse.StartWrite(id, cmd.(isa.PortScratch))
	case engRSE:
		return d.rse.Start(id, cmd)
	}
	return fmt.Errorf("dispatch: cannot start %v", cmd)
}

func (d *Dispatcher) resourcesFree(r resources) bool {
	switch r.engine {
	case engMSERead:
		if !d.mse.CanAcceptRead() {
			return false
		}
	case engMSEWrite:
		if !d.mse.CanAcceptWrite() {
			return false
		}
	case engSSERead:
		if !d.sse.CanAcceptRead() {
			return false
		}
	case engSSEWrite:
		if !d.sse.CanAcceptWrite() {
			return false
		}
	case engRSE:
		if !d.rse.CanAccept() {
			return false
		}
	}
	for _, p := range r.inWriters {
		for _, h := range d.inWriter[p] {
			if !h.draining {
				return false
			}
		}
		// Draining holders may be overlapped, but only by another memory
		// read stream: the MSE serializes same-port delivery by age.
		if len(d.inWriter[p]) > 0 && r.engine != engMSERead {
			return false
		}
	}
	for _, p := range r.inReaders {
		if _, held := d.inReader[p]; held {
			return false
		}
	}
	if r.outReader >= 0 {
		if _, held := d.outReader[r.outReader]; held {
			return false
		}
	}
	return true
}

func (d *Dispatcher) barrierMet(k isa.Kind) bool {
	switch k {
	case isa.KindBarrierScratchRd:
		return d.sse.ActiveScratchReads() == 0
	case isa.KindBarrierScratchWr:
		return d.sse.ActiveScratchWrites() == 0 && d.mse.ActiveScratchWrites() == 0
	case isa.KindBarrierAll:
		return len(d.active) == 0
	}
	return false
}

// retire frees the scoreboard entries of completed streams and
// downgrades drained memory streams to the all-requests-in-flight state.
func (d *Dispatcher) retire(now uint64) {
	free := func(ids []int) {
		for _, id := range ids {
			d.Tracer.Completed(id, now)
			if d.issuedAt != nil {
				if t, ok := d.issuedAt[id]; ok {
					d.Lat.Observe(now - t)
					delete(d.issuedAt, id)
				}
			}
			r, ok := d.active[id]
			if !ok {
				continue
			}
			d.tickProgress = true
			d.StateVer.Raise()
			for _, p := range r.inWriters {
				hs := d.inWriter[p][:0]
				for _, h := range d.inWriter[p] {
					if h.id != id {
						hs = append(hs, h)
					}
				}
				if len(hs) == 0 {
					delete(d.inWriter, p)
				} else {
					d.inWriter[p] = hs
				}
			}
			for _, p := range r.inReaders {
				if d.inReader[p] == id {
					delete(d.inReader, p)
				}
			}
			if r.outReader >= 0 && d.outReader[r.outReader] == id {
				delete(d.outReader, r.outReader)
			}
			if d.configActive && id == d.configID {
				d.configActive = false
			}
			delete(d.active, id)
		}
	}
	free(d.mse.Done())
	free(d.sse.Done())
	free(d.rse.Done())

	// All-requests-in-flight: mark destination ports takeover-ready and
	// release indirect-port reader holds (indices fully consumed).
	for _, id := range d.mse.Drained() {
		r, ok := d.active[id]
		if !ok {
			continue
		}
		d.tickProgress = true
		d.StateVer.Raise()
		for _, p := range r.inWriters {
			for i := range d.inWriter[p] {
				if d.inWriter[p][i].id == id {
					d.inWriter[p][i].draining = true
				}
			}
		}
		for _, p := range r.inReaders {
			if d.inReader[p] == id {
				delete(d.inReader, p)
			}
		}
	}
}

// Queue returns the queued commands, oldest first, for the core's hang
// diagnosis (a starved port's supply may be sitting unissued behind a
// barrier or scoreboard conflict).
func (d *Dispatcher) Queue() []isa.Command {
	out := make([]isa.Command, len(d.queue))
	for i, q := range d.queue {
		out[i] = q.cmd
	}
	return out
}

// Holder reports which active stream holds input port p in the writer
// role (the earliest non-draining holder), or -1.
func (d *Dispatcher) Holder(p int) int {
	for _, h := range d.inWriter[p] {
		if !h.draining {
			return h.id
		}
	}
	return -1
}

// QueueKinds lists the queued commands' kinds, oldest first (debug aid).
func (d *Dispatcher) QueueKinds() []isa.Kind {
	out := make([]isa.Kind, len(d.queue))
	for i, q := range d.queue {
		out[i] = q.cmd.Kind()
	}
	return out
}
