package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Client is the reference HTTP client for the service, implementing
// the retry contract the server advertises: transient failures (429
// queue-full, 503 draining) retry with exponential backoff honoring
// Retry-After; deterministic failures surface immediately.
type Client struct {
	BaseURL     string
	HTTP        *http.Client
	MaxRetries  int           // retry budget for transient failures (default 4)
	BaseBackoff time.Duration // first backoff step (default 50ms), doubled per retry
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit performs one request/response exchange. A non-200 with a
// decodable error envelope returns a *apiError; transport-level
// failures return the underlying error.
func (c *Client) Submit(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		if jerr := json.Unmarshal(data, &eb); jerr != nil || eb.Error.Kind == "" {
			return nil, &apiError{Status: resp.StatusCode, Kind: KindTransport,
				Msg: fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))}
		}
		ae := &apiError{Status: resp.StatusCode, Kind: eb.Error.Kind, Msg: eb.Error.Message}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, ae
	}
	var out Response
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitRetry is Submit under the retry policy. It returns the number
// of retries spent alongside the outcome; a deterministic failure is
// never retried (the next attempt would only reach the same verdict,
// and likely the cache).
func (c *Client) SubmitRetry(ctx context.Context, req Request) (*Response, int, error) {
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 4
	}
	backoff := c.BaseBackoff
	if backoff == 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.Submit(ctx, req)
		if err == nil {
			return resp, attempt, nil
		}
		lastErr = err
		var ae *apiError
		if !errors.As(err, &ae) || !ae.Kind.Retryable() || attempt >= maxRetries {
			return nil, attempt, lastErr
		}
		wait := backoff << attempt
		if ae.RetryAfter > wait {
			wait = ae.RetryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, attempt, context.Cause(ctx)
		}
	}
}

// LoadConfig shapes a load-generation run.
type LoadConfig struct {
	Clients     int           `json:"clients"`      // concurrent client goroutines
	Requests    int           `json:"requests"`     // total requests issued across all clients
	Workloads   []string      `json:"workloads"`    // request mix, assigned round-robin
	Seed        int64         `json:"seed"`         // request-assignment seed
	CancelEvery int           `json:"cancel_every"` // every Nth request is abandoned mid-run (0 = never)
	CancelAfter time.Duration `json:"cancel_after"` // how long a chaos request lives before abandonment
	TimeoutMS   uint64        `json:"timeout_ms"`   // per-request server-side budget (0 = server default)
	StreamEvery int           `json:"stream_every"` // every Nth request uses the SSE streaming path (0 = never)
}

// LoadResult summarizes a load run: the throughput/latency numbers
// published next to BENCH_sim.json plus the outcome census the soak
// test asserts over.
type LoadResult struct {
	Sent       int           `json:"sent"`
	OK         int           `json:"ok"`
	CacheHits  int           `json:"cache_hits"`
	Deduped    int           `json:"deduped"`
	Shed       int           `json:"shed"`     // gave up after retries on 429/503
	Canceled   int           `json:"canceled"` // chaos abandonments
	Failed     int           `json:"failed"`   // deterministic failures
	Retries    int           `json:"retries"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	SimsPerSec float64       `json:"sims_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P90        time.Duration `json:"p90_ns"`
	P99        time.Duration `json:"p99_ns"`

	StreamOK       int           `json:"stream_ok"`       // streamed requests that reached a terminal result
	StreamProgress int           `json:"stream_progress"` // progress frames observed across streamed requests
	StreamP50      time.Duration `json:"stream_p50_ns"`   // streamed-path latency percentiles
	StreamP90      time.Duration `json:"stream_p90_ns"`
	StreamP99      time.Duration `json:"stream_p99_ns"`
}

// RunLoad drives the service at baseURL with cfg.Clients concurrent
// clients and returns the aggregate result.
func RunLoad(ctx context.Context, baseURL string, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Clients < 1 || cfg.Requests < 1 {
		return nil, fmt.Errorf("loadgen: need at least one client and one request")
	}
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("loadgen: empty workload mix")
	}

	type outcome struct {
		ok, cached, deduped, shed, canceled, failed bool
		streamed                                    bool
		progress                                    int
		retries                                     int
		latency                                     time.Duration
	}
	jobs := make(chan int)
	outcomes := make([]outcome, cfg.Requests)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := &Client{BaseURL: baseURL}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			for n := range jobs {
				req := Request{
					Workload: cfg.Workloads[n%len(cfg.Workloads)],
					Options:  RunOptions{TimeoutMS: cfg.TimeoutMS},
				}
				o := &outcomes[n]
				rctx, rcancel := ctx, context.CancelFunc(func() {})
				chaos := cfg.CancelEvery > 0 && n%cfg.CancelEvery == cfg.CancelEvery-1
				if chaos {
					after := cfg.CancelAfter
					if after <= 0 {
						after = time.Duration(1+rng.Intn(5)) * time.Millisecond
					}
					rctx, rcancel = context.WithTimeout(ctx, after)
				}
				streamed := cfg.StreamEvery > 0 && n%cfg.StreamEvery == cfg.StreamEvery-1
				o.streamed = streamed
				reqStart := time.Now()
				var resp *Response
				var retries int
				var err error
				if streamed {
					var out *StreamOutcome
					out, retries, err = cl.submitStreamRetry(rctx, req)
					if out != nil {
						o.progress = out.Progress
						resp = out.Resp
					}
				} else {
					resp, retries, err = cl.SubmitRetry(rctx, req)
				}
				abandoned := rctx.Err() != nil // read before rcancel poisons it
				rcancel()
				o.retries = retries
				o.latency = time.Since(reqStart)
				switch {
				case err == nil:
					o.ok = true
					o.cached = resp.Cached
					o.deduped = resp.Deduped
				case chaos && abandoned:
					o.canceled = true
				default:
					var ae *apiError
					if errors.As(err, &ae) && ae.Kind.Retryable() {
						o.shed = true
					} else {
						o.failed = true
					}
				}
			}
		}(c)
	}
	for n := 0; n < cfg.Requests; n++ {
		select {
		case jobs <- n:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return nil, context.Cause(ctx)
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{Sent: cfg.Requests, Elapsed: elapsed}
	var okLatencies, streamLatencies []time.Duration
	for i := range outcomes {
		o := &outcomes[i]
		res.Retries += o.retries
		res.StreamProgress += o.progress
		switch {
		case o.ok:
			res.OK++
			okLatencies = append(okLatencies, o.latency)
			if o.streamed {
				res.StreamOK++
				streamLatencies = append(streamLatencies, o.latency)
			}
			if o.cached {
				res.CacheHits++
			}
			if o.deduped {
				res.Deduped++
			}
		case o.canceled:
			res.Canceled++
		case o.shed:
			res.Shed++
		default:
			res.Failed++
		}
	}
	if elapsed > 0 {
		res.SimsPerSec = float64(res.OK) / elapsed.Seconds()
	}
	percentiles := func(lats []time.Duration) (p50, p90, p99 time.Duration) {
		if len(lats) == 0 {
			return
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pick := func(q float64) time.Duration { return lats[int(q*float64(len(lats)-1))] }
		return pick(0.50), pick(0.90), pick(0.99)
	}
	res.P50, res.P90, res.P99 = percentiles(okLatencies)
	res.StreamP50, res.StreamP90, res.StreamP99 = percentiles(streamLatencies)
	return res, nil
}

// submitStreamRetry is SubmitStream under the same retry policy as
// SubmitRetry: pre-stream shedding (429/503) retries with backoff;
// anything in-band is final.
func (c *Client) submitStreamRetry(ctx context.Context, req Request) (*StreamOutcome, int, error) {
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 4
	}
	backoff := c.BaseBackoff
	if backoff == 0 {
		backoff = 50 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		out, err := c.SubmitStream(ctx, req)
		if err == nil {
			return out, attempt, nil
		}
		var ae *apiError
		if !errors.As(err, &ae) || !ae.Kind.Retryable() || attempt >= maxRetries {
			return out, attempt, err
		}
		wait := backoff << attempt
		if ae.RetryAfter > wait {
			wait = ae.RetryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return out, attempt, context.Cause(ctx)
		}
	}
}
