package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"softbrain/internal/core"
)

// cache is the content-addressed result cache: completed deterministic
// outcomes keyed by the submission hash, evicted LRU. A hit serves the
// stored response without touching a worker — identical submissions
// (and identical DFG→CGRA schedules, the expensive part of a load)
// cost one map lookup.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	resp *Response
	err  *apiError // deterministic failures are cached too
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

func (c *cache) get(key string) (*Response, *apiError, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.resp, e.err, true
}

func (c *cache) put(key string, resp *Response, err *apiError) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value = &cacheEntry{key: key, resp: resp, err: err}
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp, err: err})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flight is one in-progress simulation shared by every request that
// submitted the same content hash (singleflight dedup). The flight
// owns its own context, detached from any single request: a waiter
// that disconnects just leaves, and only when the last waiter is gone
// is the simulation itself canceled — one client's impatience never
// cancels another's result.
//
// A flight is also the unit of run telemetry: it carries a run ID, the
// lifecycle event hub streamed over SSE, and the latest heartbeat
// snapshot rendered by /statusz.
type flight struct {
	key string
	id  string // run ID, joinable across events, logs, and /statusz
	req *runRequest

	reqID     string    // request ID of the originating submission
	submitted time.Time // when the flight was created (admission time)
	deadline  time.Time // wall-clock budget expiry

	ctx    context.Context
	cancel context.CancelCauseFunc
	timer  *time.Timer // wall-clock deadline; stopped on finish

	mu      sync.Mutex
	waiters int

	events    *eventHub                           // run lifecycle events (SSE)
	startedNS atomic.Int64                        // unix ns the run left the queue (0 = still queued)
	progress  atomic.Pointer[core.ProgressReport] // latest heartbeat snapshot

	done chan struct{} // closed when resp/err are set
	resp *Response
	err  *apiError
}

// started reports when the flight left the queue, or false while
// queued.
func (f *flight) started() (time.Time, bool) {
	ns := f.startedNS.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// waiterCount is the current number of requests waiting on the flight.
func (f *flight) waiterCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.waiters
}

// addWaiter registers one more request waiting on the flight.
func (f *flight) addWaiter() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

// dropWaiter removes a departed request; the last one out cancels the
// simulation with the given cause.
func (f *flight) dropWaiter(cause error) {
	f.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	f.mu.Unlock()
	if last {
		f.cancel(cause)
	}
}

// finish publishes the outcome and wakes every waiter. The terminal
// stream event goes out before done closes, so SSE subscribers always
// observe it ahead of the done signal.
func (f *flight) finish(resp *Response, err *apiError) {
	f.resp, f.err = resp, err
	if f.events != nil {
		if err != nil {
			f.events.publish(eventError, errBody(err))
		} else {
			f.events.publish(eventResult, resp)
		}
	}
	close(f.done)
	if f.timer != nil {
		f.timer.Stop()
	}
	f.cancel(nil) // release the context resources
}

// flightGroup is the singleflight table: at most one live flight per
// submission key.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join returns the live flight for key, or registers fresh as it and
// returns nil. Either way the caller is a waiter on the returned or
// registered flight.
func (g *flightGroup) join(key string, fresh *flight) *flight {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		f.addWaiter()
		return f
	}
	fresh.addWaiter()
	g.flights[key] = fresh
	return nil
}

// forget removes the flight once it completed (or was shed before
// starting), so later submissions start a new one (or hit the cache).
func (g *flightGroup) forget(key string) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
}
