package serve

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"softbrain/internal/core"
	"softbrain/internal/faults"
	"softbrain/internal/obs"
	"softbrain/internal/wire"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// Request is one simulation submission: either a named built-in
// workload (verified against its golden model) or a raw wire-format
// program. Exactly one of Workload and Program must be set.
type Request struct {
	Workload string `json:"workload,omitempty"` // built-in workload name
	Scale    int    `json:"scale,omitempty"`    // problem scale (named workloads)

	Program *wire.Program `json:"program,omitempty"` // raw program submission
	Config  *wire.Config  `json:"config,omitempty"`  // machine knobs (raw submissions; knobs-only for named)

	Faults *FaultsBlock `json:"faults,omitempty"` // per-request fault injection

	Options RunOptions `json:"options,omitempty"`
}

// FaultsBlock requests fault injection for one run. With an explicit
// seed the run is deterministic — identical resubmissions reach the
// identical outcome, so caching and dedup apply as usual. Without one
// the server draws a fresh seed, reports it in the response, and the
// run bypasses the cache: two identical-looking submissions would not
// reach the same outcome, so neither may answer for the other.
type FaultsBlock struct {
	Profile string `json:"profile"`        // named profile (see internal/faults)
	Seed    *int64 `json:"seed,omitempty"` // omitted = server draws one
}

// RunOptions select what the response carries and how long the run may
// take.
type RunOptions struct {
	Warm      bool   `json:"warm,omitempty"`       // measure the cache-warm second run
	Metrics   bool   `json:"metrics,omitempty"`    // include the obs metrics dump
	Trace     bool   `json:"trace,omitempty"`      // include the Perfetto trace
	TimeoutMS uint64 `json:"timeout_ms,omitempty"` // per-request wall-clock budget
}

// Response is a completed simulation.
type Response struct {
	Name      string          `json:"name"`
	Units     int             `json:"units"`
	Cycles    uint64          `json:"cycles"`
	Verified  bool            `json:"verified"`          // golden-model check ran and passed
	Cached    bool            `json:"cached"`            // served from the result cache
	Deduped   bool            `json:"deduped,omitempty"` // shared an in-flight identical run
	Stats     *core.Stats     `json:"stats"`
	Metrics   json.RawMessage `json:"metrics,omitempty"`
	Trace     json.RawMessage `json:"trace,omitempty"`
	SimMS     float64         `json:"sim_ms"`               // host wall time of the simulation itself
	FaultSeed int64           `json:"fault_seed,omitempty"` // server-drawn fault seed (unseeded faults block)
}

// ErrKind classifies a request failure for the retry policy: transient
// kinds are worth retrying with backoff, deterministic ones never are
// (an identical resubmission reaches the identical outcome — and
// likely the cache).
type ErrKind string

const (
	KindInvalid   ErrKind = "invalid-request" // malformed submission (wire rejection)
	KindUnknown   ErrKind = "unknown-workload"
	KindOverload  ErrKind = "overloaded" // admission queue full — transient
	KindDraining  ErrKind = "draining"   // server shutting down — transient
	KindDeadline  ErrKind = "deadline-exceeded"
	KindCanceled  ErrKind = "canceled"
	KindDeadlock  ErrKind = "deadlock"      // classified hang — deterministic
	KindMachine   ErrKind = "machine-error" // invariant failure — deterministic
	KindVerify    ErrKind = "verify-failed"
	KindPanic     ErrKind = "internal-panic"
	KindTransport ErrKind = "transport" // client-side: connection-level failure
)

// Retryable reports whether a failure of this kind is transient: only
// overload and drain shedding are — never a deterministic simulation
// outcome, and never an invalid submission.
func (k ErrKind) Retryable() bool {
	return k == KindOverload || k == KindDraining || k == KindTransport
}

// apiError is the typed failure the server reports, rendered as the
// ErrorBody JSON and mapped to an HTTP status.
type apiError struct {
	Status     int // HTTP status code
	Kind       ErrKind
	Msg        string
	RetryAfter time.Duration // client-side: parsed Retry-After hint
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Kind, e.Msg) }

// ErrorBody is the JSON error envelope clients receive.
type ErrorBody struct {
	Error struct {
		Kind      ErrKind `json:"kind"`
		Message   string  `json:"message"`
		Retryable bool    `json:"retryable"`
	} `json:"error"`
}

func errBody(e *apiError) ErrorBody {
	var b ErrorBody
	b.Error.Kind = e.Kind
	b.Error.Message = e.Msg
	b.Error.Retryable = e.Kind.Retryable()
	return b
}

// testHookExecute, when set, observes every execution as it starts.
// Tests use it to inject faults (panics, stalls) behind the worker's
// isolation boundary.
var testHookExecute func(*runRequest)

// runRequest is a validated, executable submission.
type runRequest struct {
	name    string
	scale   int                 // named-workload problem scale
	inst    *workloads.Instance // named-workload path
	prog    *core.Program       // raw-program path
	cfg     core.Config
	opts    RunOptions
	timeout time.Duration

	bypassCache bool  // unseeded faults: outcome is not content-addressed
	faultSeed   int64 // server-drawn seed to report back
}

// decodeRequest strictly parses and validates a submission body.
func (s *Server) decodeRequest(body []byte) (*runRequest, *apiError) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: err.Error()}
	}
	if dec.More() {
		return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: "trailing data after request object"}
	}
	if (req.Workload == "") == (req.Program == nil) {
		return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: "exactly one of workload and program must be set"}
	}
	rr := &runRequest{opts: req.Options}
	rr.timeout = s.opts.DefaultTimeout
	if req.Options.TimeoutMS > 0 {
		rr.timeout = time.Duration(req.Options.TimeoutMS) * time.Millisecond
	}
	if rr.timeout > s.opts.MaxTimeout {
		rr.timeout = s.opts.MaxTimeout
	}

	if req.Program != nil {
		prog, err := req.Program.Build()
		if err != nil {
			return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: err.Error()}
		}
		wc := wire.Config{}
		if req.Config != nil {
			wc = *req.Config
		}
		cfg, err := wc.Build()
		if err != nil {
			return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: err.Error()}
		}
		rr.name, rr.prog, rr.cfg = prog.Name, prog, cfg
		return rr, applyFaults(&req, rr)
	}

	if req.Scale == 0 {
		req.Scale = 1 // normalized before keying: scale 0 and 1 are the same content
	}
	inst, cfg, err := buildWorkload(req.Workload, req.Scale)
	if err != nil {
		return nil, &apiError{Status: 404, Kind: KindUnknown, Msg: err.Error()}
	}
	// Named workloads pick their own fabric; the wire config contributes
	// the scalar knobs only.
	if req.Config != nil {
		if req.Config.Preset != "" {
			return nil, &apiError{Status: 400, Kind: KindInvalid,
				Msg: "config.preset does not apply to a named workload (the workload picks its fabric)"}
		}
		knobs, kerr := req.Config.Build()
		if kerr != nil {
			return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: kerr.Error()}
		}
		cfg.WatchdogCycles = knobs.WatchdogCycles
		cfg.NoSkipAhead = knobs.NoSkipAhead
		cfg.Faults = knobs.Faults
		if verr := cfg.Validate(); verr != nil {
			return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: verr.Error()}
		}
	}
	rr.name, rr.scale, rr.inst, rr.cfg = inst.Name, req.Scale, inst, cfg
	return rr, applyFaults(&req, rr)
}

// applyFaults resolves a top-level faults block onto the run config.
func applyFaults(req *Request, rr *runRequest) *apiError {
	if req.Faults == nil {
		return nil
	}
	if req.Config != nil && req.Config.Faults != nil {
		return &apiError{Status: 400, Kind: KindInvalid,
			Msg: "faults and config.faults are mutually exclusive; set one"}
	}
	var seed int64
	if req.Faults.Seed != nil {
		seed = *req.Faults.Seed
	} else {
		seed = drawSeed()
		rr.bypassCache = true
		rr.faultSeed = seed
	}
	fc, err := faults.Profile(req.Faults.Profile, seed)
	if err != nil {
		return &apiError{Status: 400, Kind: KindInvalid, Msg: err.Error()}
	}
	if verr := fc.Validate(); verr != nil {
		return &apiError{Status: 400, Kind: KindInvalid, Msg: verr.Error()}
	}
	rr.cfg.Faults = &fc
	return nil
}

// drawSeed draws a nonzero random fault seed.
func drawSeed() int64 {
	var b [8]byte
	_, _ = crand.Read(b[:]) // crypto/rand.Read does not fail on supported platforms
	seed := int64(binary.LittleEndian.Uint64(b[:]) >> 1)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// buildWorkload resolves a named built-in workload exactly as sdsim
// does: DNN layers on the 8-unit DNN cluster, MachSuite and extension
// codes on the broadly provisioned single unit.
func buildWorkload(name string, scale int) (*workloads.Instance, core.Config, error) {
	if scale == 0 {
		scale = 1
	}
	if scale < 1 || scale > 8 {
		return nil, core.Config{}, fmt.Errorf("scale %d out of range [1, 8]", scale)
	}
	if l, err := dnn.Find(name); err == nil {
		cfg := dnn.Config()
		inst, err := l.Build(cfg, dnn.Units)
		return inst, cfg, err
	}
	cfg := core.DefaultConfig()
	if e, err := machsuite.Find(name); err == nil {
		inst, err := e.Build(cfg, scale)
		return inst, cfg, err
	}
	e, err := ext.Find(name)
	if err != nil {
		return nil, core.Config{}, fmt.Errorf("unknown workload %q", name)
	}
	inst, err := e.Build(cfg, scale)
	return inst, cfg, err
}

// cacheKey is the content address of a submission: the SHA-256 of the
// canonical re-encoding of everything that determines the result. For
// a raw program that is the wire re-encoding of the decoded program
// (whitespace- and field-order-independent); for a named workload it
// is (name, scale) — the DFG→CGRA placement a rebuild would produce
// is not canonical, so the workload's identity is its name, not any
// one compiled artifact. The scalar knobs and output options are
// hashed in both cases.
func (rr *runRequest) cacheKey() (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	if rr.prog != nil {
		wp, err := wire.FromProgram(rr.prog)
		if err != nil {
			return "", err
		}
		if err := enc.Encode(wp); err != nil {
			return "", err
		}
	} else {
		fmt.Fprintf(h, "workload=%s scale=%d\n", rr.name, rr.scale)
	}
	fmt.Fprintf(h, "watchdog=%d noskip=%v warm=%v metrics=%v trace=%v\n",
		rr.cfg.WatchdogCycles, rr.cfg.NoSkipAhead, rr.opts.Warm, rr.opts.Metrics, rr.opts.Trace)
	if rr.cfg.Faults != nil {
		if err := enc.Encode(rr.cfg.Faults); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheable reports whether an outcome may be served to a future
// identical submission: successes and deterministic failures are;
// cancellations, deadlines, and shedding are not.
func cacheable(err *apiError) bool {
	if err == nil {
		return true
	}
	switch err.Kind {
	case KindDeadlock, KindMachine, KindVerify:
		return true
	}
	return false
}

// execute runs one validated submission under its flight context and
// classifies the outcome. It never panics: simulation invariants are
// recovered inside core, and the worker loop recovers anything else.
func (s *Server) execute(ctx context.Context, f *flight) (*Response, *apiError) {
	rr := f.req
	if testHookExecute != nil {
		testHookExecute(rr)
	}
	start := time.Now()
	resp := &Response{Name: rr.name, Units: 1, FaultSeed: rr.faultSeed}

	var stats *core.Stats
	var err error
	switch {
	case rr.inst != nil:
		resp.Units = rr.inst.Units()
		stats, err = s.executeInstance(ctx, f, rr, resp)
	default:
		stats, err = s.executeProgram(ctx, f, rr, resp)
	}
	if err != nil {
		return nil, classify(err)
	}
	resp.Cycles = stats.Cycles
	resp.Stats = stats
	resp.SimMS = float64(time.Since(start).Microseconds()) / 1e3
	return resp, nil
}

// executeInstance runs a named workload, verifying against the golden
// model (except under corrupting fault profiles, where a mismatch is
// the expected fault effect, not an error).
func (s *Server) executeInstance(ctx context.Context, f *flight, rr *runRequest, resp *Response) (*core.Stats, error) {
	inst := rr.inst
	cl, err := core.NewCluster(rr.cfg, inst.Units())
	if err != nil {
		return nil, err
	}
	s.installHeartbeat(cl, f)
	if rr.opts.Metrics || rr.opts.Trace {
		cl.EnableMetrics(obs.Options{Slices: obs.DefaultSlices})
	}
	if rr.opts.Trace {
		for _, u := range cl.Units {
			u.EnableTrace(4096)
		}
	}
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	runs := 1
	if rr.opts.Warm {
		runs = 2
	}
	var stats *core.Stats
	for i := 0; i < runs; i++ {
		if stats, err = cl.RunContext(ctx, inst.Progs); err != nil {
			return nil, err
		}
	}
	if inst.Check != nil {
		if cerr := inst.Check(cl.Mem); cerr != nil {
			if rr.cfg.Faults == nil || !rr.cfg.Faults.Corrupting() {
				return nil, &apiError{Status: 422, Kind: KindVerify, Msg: cerr.Error()}
			}
		} else {
			resp.Verified = true
		}
	}
	s.recordRun(cl, stats)
	return stats, s.attachObs(cl, stats, rr, resp)
}

// executeProgram runs a raw single-unit program submission. There is
// no golden model; the deliverables are stats, metrics, and trace.
func (s *Server) executeProgram(ctx context.Context, f *flight, rr *runRequest, resp *Response) (*core.Stats, error) {
	cl, err := core.NewCluster(rr.cfg, 1)
	if err != nil {
		return nil, err
	}
	s.installHeartbeat(cl, f)
	if rr.opts.Metrics || rr.opts.Trace {
		cl.EnableMetrics(obs.Options{Slices: obs.DefaultSlices})
	}
	if rr.opts.Trace {
		cl.Units[0].EnableTrace(4096)
	}
	stats, err := cl.RunContext(ctx, []*core.Program{rr.prog})
	if err != nil {
		return nil, err
	}
	s.recordRun(cl, stats)
	return stats, s.attachObs(cl, stats, rr, resp)
}

// installHeartbeat routes the cluster's progress heartbeat into the
// flight's telemetry (stream events, /statusz snapshot, debug logs).
func (s *Server) installHeartbeat(cl *core.Cluster, f *flight) {
	if f == nil || f.events == nil {
		return
	}
	cl.SetHeartbeat(s.opts.ProgressEvery, func(r core.ProgressReport) { s.onProgress(f, r) })
}

// recordRun folds a completed simulation into the /metrics aggregates.
func (s *Server) recordRun(cl *core.Cluster, stats *core.Stats) {
	pr := cl.Progress(stats.Cycles)
	s.metrics.addRun(stats.Cycles, pr.RetiredBytes, cl.SchedStats())
}

// attachObs renders the requested metrics dump and Perfetto trace into
// the response.
func (s *Server) attachObs(cl *core.Cluster, stats *core.Stats, rr *runRequest, resp *Response) error {
	if rr.opts.Metrics {
		dump := cl.MetricsDump()
		if err := obs.CheckConservation(dump); err != nil {
			return err
		}
		s.metrics.addStalls(dump)
		data, err := json.Marshal(dump)
		if err != nil {
			return err
		}
		resp.Metrics = data
	}
	if rr.opts.Trace {
		var buf bytes.Buffer
		if err := obs.WriteTrace(&buf, cl.TraceInputs(stats.Cycles)); err != nil {
			return err
		}
		resp.Trace = json.RawMessage(buf.Bytes())
	}
	return nil
}

// classify maps an execution error onto the typed API failure. The
// mapping is the server half of the retry contract: deterministic
// outcomes (deadlock, machine error, verification mismatch) are final;
// only cancellation causes are transient, and only the drain cause is
// marked retryable.
func classify(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var ce *core.CanceledError
	if errors.As(err, &ce) {
		switch {
		case errors.Is(ce.Err, errDeadline):
			return &apiError{Status: 504, Kind: KindDeadline,
				Msg: fmt.Sprintf("wall-clock budget exhausted at cycle %d", ce.Cycle)}
		case errors.Is(ce.Err, errDraining):
			return &apiError{Status: 503, Kind: KindDraining,
				Msg: fmt.Sprintf("server draining; run canceled at cycle %d", ce.Cycle)}
		default:
			return &apiError{Status: 499, Kind: KindCanceled, Msg: ce.Error()}
		}
	}
	var de *core.DeadlockError
	if errors.As(err, &de) {
		return &apiError{Status: 422, Kind: KindDeadlock, Msg: de.Error()}
	}
	var me *core.MachineError
	if errors.As(err, &me) {
		return &apiError{Status: 500, Kind: KindMachine, Msg: me.Error()}
	}
	return &apiError{Status: 500, Kind: KindMachine, Msg: err.Error()}
}
