package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// SelfTest is the in-process end-to-end smoke the check.sh gate runs:
// start a real server on a loopback port, submit gemm, resubmit and
// require a cache hit, reject an invalid body with a typed error, then
// drain and require /readyz to flip unhealthy and in-flight work to
// finish. It returns nil only if every step behaved.
func SelfTest(w io.Writer) error {
	s := New(Options{Workers: 2, QueueDepth: 4, DrainGrace: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	cl := &Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			return fmt.Errorf("smoke %s: %w", name, err)
		}
		fmt.Fprintf(w, "smoke %-14s ok\n", name)
		return nil
	}

	if err := step("healthz", func() error {
		return expectStatus(ctx, base+"/healthz", http.StatusOK)
	}); err != nil {
		return err
	}
	if err := step("readyz", func() error {
		return expectStatus(ctx, base+"/readyz", http.StatusOK)
	}); err != nil {
		return err
	}
	var first *Response
	if err := step("run gemm", func() error {
		resp, _, err := cl.SubmitRetry(ctx, Request{Workload: "gemm"})
		if err != nil {
			return err
		}
		if !resp.Verified {
			return fmt.Errorf("gemm not verified against golden model")
		}
		if resp.Cached {
			return fmt.Errorf("first run reported cached")
		}
		first = resp
		return nil
	}); err != nil {
		return err
	}
	if err := step("cache hit", func() error {
		resp, _, err := cl.SubmitRetry(ctx, Request{Workload: "gemm"})
		if err != nil {
			return err
		}
		if !resp.Cached {
			return fmt.Errorf("resubmission missed the cache")
		}
		if resp.Cycles != first.Cycles {
			return fmt.Errorf("cached cycles %d != first run %d", resp.Cycles, first.Cycles)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("typed reject", func() error {
		_, err := cl.Submit(ctx, Request{Workload: "no-such-kernel"})
		var ae *apiError
		if !errors.As(err, &ae) || ae.Kind != KindUnknown {
			return fmt.Errorf("want unknown-workload rejection, got %v", err)
		}
		if ae.Kind.Retryable() {
			return fmt.Errorf("unknown workload marked retryable")
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("drain", func() error {
		// Kick off a fresh (uncached) run, then drain while it is in
		// flight: drain must finish it, and readyz must flip unhealthy.
		inflight := make(chan error, 1)
		go func() {
			resp, _, err := cl.SubmitRetry(ctx, Request{Workload: "fft"})
			if err == nil && resp == nil {
				err = fmt.Errorf("nil response")
			}
			inflight <- err
		}()
		time.Sleep(20 * time.Millisecond) // let it reach a worker
		s.Drain()
		if err := expectStatus(ctx, base+"/readyz", http.StatusServiceUnavailable); err != nil {
			return fmt.Errorf("readyz after drain: %w", err)
		}
		if _, err := cl.Submit(ctx, Request{Workload: "gemm", Options: RunOptions{Metrics: true}}); err == nil {
			return fmt.Errorf("post-drain submission accepted")
		}
		select {
		case err := <-inflight:
			if err != nil {
				// The drain grace is generous; the in-flight run should
				// have completed, not been shed.
				return fmt.Errorf("in-flight run during drain: %w", err)
			}
		case <-ctx.Done():
			return fmt.Errorf("in-flight run never returned after drain")
		}
		return nil
	}); err != nil {
		return err
	}

	// Graceful drain already happened at the serve layer (every accepted
	// run finished and responded); the listener teardown can be abrupt.
	// http.Server.Shutdown would wait forever on a pooled keep-alive
	// connection that never sends another request.
	if err := hs.Close(); err != nil {
		return fmt.Errorf("smoke shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("smoke serve: %w", err)
	}
	c := s.Counters()
	fmt.Fprintf(w, "smoke counters: accepted=%d completed=%d cache_hits=%d rejected=%d\n",
		c.Accepted, c.Completed, c.CacheHits, c.Rejected)
	if c.CacheHits == 0 {
		return fmt.Errorf("smoke: no cache hit recorded")
	}
	if c.Panics != 0 {
		return fmt.Errorf("smoke: %d panics escaped into the counters", c.Panics)
	}
	return nil
}

func expectStatus(ctx context.Context, url string, want int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s: status %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}
