package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"softbrain/internal/obs"
)

// SelfTest is the in-process end-to-end smoke the check.sh gate runs:
// start a real server on a loopback port, submit gemm, resubmit and
// require a cache hit, stream a run and require progress events before
// a terminal result byte-identical to the unary body, scrape /metrics
// through the exposition lint, reject an invalid body with a typed
// error, then drain and require /readyz to flip unhealthy and
// in-flight work to finish. It returns nil only if every step behaved.
func SelfTest(w io.Writer) error {
	// ProgressEvery < 0 fires a progress frame at every heartbeat stride,
	// so even a fast smoke workload emits several.
	s := New(Options{Workers: 2, QueueDepth: 4, DrainGrace: 10 * time.Second, ProgressEvery: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	cl := &Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			return fmt.Errorf("smoke %s: %w", name, err)
		}
		fmt.Fprintf(w, "smoke %-14s ok\n", name)
		return nil
	}

	if err := step("healthz", func() error {
		return expectStatus(ctx, base+"/healthz", http.StatusOK)
	}); err != nil {
		return err
	}
	if err := step("readyz", func() error {
		return expectStatus(ctx, base+"/readyz", http.StatusOK)
	}); err != nil {
		return err
	}
	var first *Response
	if err := step("run gemm", func() error {
		resp, _, err := cl.SubmitRetry(ctx, Request{Workload: "gemm"})
		if err != nil {
			return err
		}
		if !resp.Verified {
			return fmt.Errorf("gemm not verified against golden model")
		}
		if resp.Cached {
			return fmt.Errorf("first run reported cached")
		}
		first = resp
		return nil
	}); err != nil {
		return err
	}
	if err := step("cache hit", func() error {
		resp, _, err := cl.SubmitRetry(ctx, Request{Workload: "gemm"})
		if err != nil {
			return err
		}
		if !resp.Cached {
			return fmt.Errorf("resubmission missed the cache")
		}
		if resp.Cycles != first.Cycles {
			return fmt.Errorf("cached cycles %d != first run %d", resp.Cycles, first.Cycles)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("stream run", func() error {
		// Fresh submission (distinct scale) over SSE: the lifecycle must
		// arrive in order with at least one progress frame before the
		// terminal result.
		out, err := cl.SubmitStream(ctx, Request{Workload: "gemm", Scale: 4})
		if err != nil {
			return err
		}
		if out.Progress < 1 {
			return fmt.Errorf("no progress events before the terminal result")
		}
		var order []string
		for _, ev := range out.Events {
			order = append(order, ev.Type)
		}
		joined := strings.Join(order, " ")
		if order[0] != eventQueued || order[1] != eventStarted || order[len(order)-1] != eventResult {
			return fmt.Errorf("unexpected event order: %s", joined)
		}
		if !out.Resp.Verified {
			return fmt.Errorf("streamed gemm not verified against golden model")
		}
		fmt.Fprintf(w, "smoke stream events: %s\n", joined)
		return nil
	}); err != nil {
		return err
	}
	if err := step("stream cached", func() error {
		// The same submission over the unary and streaming paths must
		// carry the same payload: the terminal SSE data is byte-identical
		// to the compacted unary response body.
		body, err := rawSubmit(ctx, base, `{"workload":"gemm","scale":4}`)
		if err != nil {
			return err
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, body); err != nil {
			return err
		}
		out, err := cl.SubmitStream(ctx, Request{Workload: "gemm", Scale: 4})
		if err != nil {
			return err
		}
		if len(out.Events) != 1 || out.Events[0].Type != eventResult {
			return fmt.Errorf("cached stream: want exactly one result event, got %d events", len(out.Events))
		}
		if !out.Resp.Cached {
			return fmt.Errorf("cached stream response not marked cached")
		}
		if !bytes.Equal(bytes.TrimSpace(compact.Bytes()), []byte(out.Events[0].Data)) {
			return fmt.Errorf("terminal event differs from unary body:\nunary:  %s\nstream: %s",
				compact.Bytes(), out.Events[0].Data)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("metrics", func() error {
		expo, err := rawGet(ctx, base+"/metrics")
		if err != nil {
			return err
		}
		if lerr := obs.CheckExposition(expo); lerr != nil {
			return fmt.Errorf("exposition lint: %w", lerr)
		}
		completed, err := promValue(expo, "serve_completed_total")
		if err != nil {
			return err
		}
		statusz, err := rawGet(ctx, base+"/statusz")
		if err != nil {
			return err
		}
		var st struct {
			Counters Counters `json:"counters"`
		}
		if err := json.Unmarshal(statusz, &st); err != nil {
			return err
		}
		if uint64(completed) != st.Counters.Completed {
			return fmt.Errorf("serve_completed_total %v disagrees with /statusz completed %d",
				completed, st.Counters.Completed)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("typed reject", func() error {
		_, err := cl.Submit(ctx, Request{Workload: "no-such-kernel"})
		var ae *apiError
		if !errors.As(err, &ae) || ae.Kind != KindUnknown {
			return fmt.Errorf("want unknown-workload rejection, got %v", err)
		}
		if ae.Kind.Retryable() {
			return fmt.Errorf("unknown workload marked retryable")
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("drain", func() error {
		// Kick off a fresh (uncached) run, then drain while it is in
		// flight: drain must finish it, and readyz must flip unhealthy.
		inflight := make(chan error, 1)
		go func() {
			resp, _, err := cl.SubmitRetry(ctx, Request{Workload: "fft"})
			if err == nil && resp == nil {
				err = fmt.Errorf("nil response")
			}
			inflight <- err
		}()
		time.Sleep(20 * time.Millisecond) // let it reach a worker
		s.Drain()
		if err := expectStatus(ctx, base+"/readyz", http.StatusServiceUnavailable); err != nil {
			return fmt.Errorf("readyz after drain: %w", err)
		}
		if _, err := cl.Submit(ctx, Request{Workload: "gemm", Options: RunOptions{Metrics: true}}); err == nil {
			return fmt.Errorf("post-drain submission accepted")
		}
		select {
		case err := <-inflight:
			if err != nil {
				// The drain grace is generous; the in-flight run should
				// have completed, not been shed.
				return fmt.Errorf("in-flight run during drain: %w", err)
			}
		case <-ctx.Done():
			return fmt.Errorf("in-flight run never returned after drain")
		}
		return nil
	}); err != nil {
		return err
	}

	// Graceful drain already happened at the serve layer (every accepted
	// run finished and responded); the listener teardown can be abrupt.
	// http.Server.Shutdown would wait forever on a pooled keep-alive
	// connection that never sends another request.
	if err := hs.Close(); err != nil {
		return fmt.Errorf("smoke shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("smoke serve: %w", err)
	}
	c := s.Counters()
	fmt.Fprintf(w, "smoke counters: accepted=%d completed=%d cache_hits=%d rejected=%d\n",
		c.Accepted, c.Completed, c.CacheHits, c.Rejected)
	if c.CacheHits == 0 {
		return fmt.Errorf("smoke: no cache hit recorded")
	}
	if c.Panics != 0 {
		return fmt.Errorf("smoke: %d panics escaped into the counters", c.Panics)
	}
	return nil
}

// rawSubmit posts a literal JSON body and returns the raw response
// bytes (for byte-level comparisons the typed client would launder).
func rawSubmit(ctx context.Context, base, body string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/run", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("raw submit: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return data, nil
}

func rawGet(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// promValue extracts a single unlabeled sample value from a text
// exposition payload.
func promValue(expo []byte, name string) (float64, error) {
	for _, line := range strings.Split(string(expo), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				return 0, fmt.Errorf("parse %q: %w", line, err)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not in exposition", name)
}

func expectStatus(ctx context.Context, url string, want int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s: status %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}
