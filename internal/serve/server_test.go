package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"softbrain/internal/core"
	"softbrain/internal/isa"
	"softbrain/internal/progen"
	"softbrain/internal/wire"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s := New(opts)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Drain()
	})
	return s, hs, &Client{BaseURL: hs.URL, HTTP: hs.Client()}
}

func TestRunAndCacheHit(t *testing.T) {
	s, _, cl := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	first, err := cl.Submit(ctx, Request{Workload: "gemm"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || !first.Verified || first.Cycles == 0 {
		t.Fatalf("first run: %+v", first)
	}
	second, err := cl.Submit(ctx, Request{Workload: "gemm"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatalf("resubmission missed the cache: %+v", second)
	}
	if second.Cycles != first.Cycles {
		t.Fatalf("cached cycles %d != original %d", second.Cycles, first.Cycles)
	}
	if c := s.Counters(); c.CacheHits != 1 || c.Completed != 1 {
		t.Fatalf("counters: %+v", c)
	}

	// A different scale is different content: must miss.
	third, err := cl.Submit(ctx, Request{Workload: "gemm", Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("scale=2 submission hit the scale=1 cache entry")
	}
}

// TestSingleflightDedup stalls the first execution so identical
// concurrent submissions must join it rather than simulate again.
func TestSingleflightDedup(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	testHookExecute = func(*runRequest) {
		started <- struct{}{}
		<-release
	}
	defer func() { testHookExecute = nil }()

	s, _, cl := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	const waiters = 3
	var wg sync.WaitGroup
	results := make([]*Response, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cl.Submit(ctx, Request{Workload: "gemm"})
		}(i)
	}
	<-started // exactly one execution may start
	for {
		if s.Counters().Deduped == waiters-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var deduped int
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i].Deduped {
			deduped++
		}
	}
	if deduped != waiters-1 {
		t.Fatalf("deduped = %d, want %d", deduped, waiters-1)
	}
	select {
	case <-started:
		t.Fatal("a second execution started for identical content")
	default:
	}
	if c := s.Counters(); c.Accepted != 1 || c.Deduped != waiters-1 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestAdmissionShed fills the worker pool and queue, then requires the
// overflow request to be shed with 429 + Retry-After, immediately —
// never queued unboundedly, never hung.
func TestAdmissionShed(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	testHookExecute = func(*runRequest) { <-release }
	defer func() { testHookExecute = nil }()
	defer releaseAll()

	s, _, cl := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	// Distinct content keys so nothing dedups: scales 1 and 2 occupy the
	// worker and the queue slot.
	occupy := []Request{{Workload: "gemm", Scale: 1}, {Workload: "gemm", Scale: 2}}
	var wg sync.WaitGroup
	for _, req := range occupy {
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			cl.Submit(ctx, req)
		}(req)
	}
	for s.Counters().Accepted != 2 {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	_, err := cl.Submit(ctx, Request{Workload: "gemm", Scale: 3})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || ae.Kind != KindOverload {
		t.Fatalf("overflow submission: err = %v, want 429 overloaded", err)
	}
	if !ae.Kind.Retryable() {
		t.Fatal("overload not marked retryable")
	}
	if ae.RetryAfter <= 0 {
		t.Fatal("429 carried no Retry-After")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("shed request took %v; shedding must be immediate", waited)
	}
	if c := s.Counters(); c.Shed != 1 {
		t.Fatalf("counters: %+v", c)
	}
	releaseAll()
	wg.Wait()
}

// TestDeadline gives a request a tiny wall budget while the hook holds
// its worker, so the simulation starts only after its budget expired —
// and must come back 504, non-retryable.
func TestDeadline(t *testing.T) {
	gate := make(chan struct{})
	testHookExecute = func(*runRequest) { <-gate }
	defer func() { testHookExecute = nil }()

	s, _, cl := newTestServer(t, Options{Workers: 1})
	time.AfterFunc(100*time.Millisecond, func() { close(gate) })

	_, err := cl.Submit(context.Background(), Request{Workload: "gemm", Options: RunOptions{TimeoutMS: 5}})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Kind != KindDeadline || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("err = %v, want 504 deadline-exceeded", err)
	}
	if ae.Kind.Retryable() {
		t.Fatal("deadline marked retryable")
	}
	if c := s.Counters(); c.Canceled != 1 {
		t.Fatalf("counters: %+v", c)
	}

	// The expired outcome must not have been cached: a fresh submission
	// with the same content simulates and succeeds.
	resp, err := cl.Submit(context.Background(), Request{Workload: "gemm", Options: RunOptions{TimeoutMS: 5}})
	if err != nil {
		t.Fatalf("post-deadline resubmission: %v", err)
	}
	if resp.Cached {
		t.Fatal("deadline outcome was served from the cache")
	}
}

// TestPanicIsolation injects a panic into one request's execution and
// requires it to become that request's 500 while the server keeps
// serving everyone else.
func TestPanicIsolation(t *testing.T) {
	testHookExecute = func(rr *runRequest) {
		if rr.name == "fft" {
			panic("injected fault")
		}
	}
	defer func() { testHookExecute = nil }()

	s, _, cl := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	_, err := cl.Submit(ctx, Request{Workload: "fft"})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Kind != KindPanic || ae.Status != 500 {
		t.Fatalf("err = %v, want 500 internal-panic", err)
	}
	if ae.Kind.Retryable() {
		t.Fatal("panic marked retryable")
	}
	if !strings.Contains(ae.Msg, "injected fault") {
		t.Fatalf("panic message lost: %q", ae.Msg)
	}

	// The worker survived; an untainted workload still runs.
	resp, err := cl.Submit(ctx, Request{Workload: "gemm"})
	if err != nil || !resp.Verified {
		t.Fatalf("post-panic request: resp=%+v err=%v", resp, err)
	}
	if c := s.Counters(); c.Panics != 1 || c.Completed != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestDeterministicFailureCached submits a raw program that starves
// its dataflow (one operand short): the deadlock must come back as a
// typed, non-retryable 422 — and the resubmission must hit the cache
// without burning a worker on the same hang.
func TestDeterministicFailureCached(t *testing.T) {
	s, _, cl := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	cfg := core.DefaultConfig()
	p, ports, err := progen.Addpair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Emit(isa.MemPort{Src: isa.Linear(0x1000, 16), Dst: ports.A})
	p.Emit(isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: ports.B})
	p.Emit(isa.CleanPort{Src: ports.C, Elem: isa.Elem64, Count: 2})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	wp, err := wire.FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		Program: &wp,
		Config:  &wire.Config{WatchdogCycles: 20000},
	}

	_, err = cl.Submit(ctx, req)
	var ae *apiError
	if !errors.As(err, &ae) || ae.Kind != KindDeadlock || ae.Status != 422 {
		t.Fatalf("starved program: err = %v, want 422 deadlock", err)
	}
	if ae.Kind.Retryable() {
		t.Fatal("deadlock marked retryable")
	}

	before := s.Counters().Accepted
	_, err = cl.Submit(ctx, req)
	if !errors.As(err, &ae) || ae.Kind != KindDeadlock {
		t.Fatalf("resubmitted starved program: err = %v, want deadlock", err)
	}
	if after := s.Counters().Accepted; after != before {
		t.Fatalf("deadlock resubmission reached a worker (accepted %d -> %d); want cache hit", before, after)
	}
	if s.Counters().CacheHits == 0 {
		t.Fatal("no cache hit recorded for the cached deadlock")
	}
}

func TestInvalidSubmissions(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Workers: 1, MaxBodyBytes: 64 << 10})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{`, 400},
		{"unknown field", `{"workload":"gemm","bogus":1}`, 400},
		{"neither", `{}`, 400},
		{"both", `{"workload":"gemm","program":{"name":"x","trace":[]}}`, 400},
		{"unknown workload", `{"workload":"no-such"}`, 404},
		{"bad scale", `{"workload":"gemm","scale":99}`, 404},
	}
	for _, tc := range cases {
		resp, err := http.Post(hs.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Oversized body: 413, typed, and never reaches a worker.
	big := bytes.Repeat([]byte("x"), 1<<20)
	resp, err := http.Post(hs.URL+"/v1/run", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestDrainUnderLoad races Drain against a stream of submissions: no
// send-on-closed-channel panic, every response is one of 200/429/503,
// and Drain returns with all workers stopped.
func TestDrainUnderLoad(t *testing.T) {
	s, _, cl := newTestServer(t, Options{Workers: 2, QueueDepth: 2, DrainGrace: 5 * time.Second})
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := cl.Submit(ctx, Request{Workload: "gemm", Scale: 1 + i%4})
			if err == nil {
				return
			}
			var ae *apiError
			if !errors.As(err, &ae) {
				t.Errorf("request %d: untyped error %v", i, err)
				return
			}
			switch ae.Status {
			case 429, 503:
			default:
				t.Errorf("request %d: status %d (%s)", i, ae.Status, ae.Kind)
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	s.Drain()
	wg.Wait()

	// Post-drain: readyz is unhealthy, fresh work is rejected 503 with a
	// retryable envelope, and cached results still serve.
	_, err := cl.Submit(ctx, Request{Workload: "stencil2d"})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != 503 || ae.Kind != KindDraining {
		t.Fatalf("post-drain submission: %v, want 503 draining", err)
	}
	if !ae.Kind.Retryable() {
		t.Fatal("draining not marked retryable")
	}
}

func TestSelfTest(t *testing.T) {
	var buf bytes.Buffer
	if err := SelfTest(&buf); err != nil {
		t.Fatalf("self test failed: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"run gemm", "cache hit", "drain"} {
		if !strings.Contains(buf.String(), "smoke "+want) {
			t.Errorf("self test output missing %q:\n%s", want, buf.String())
		}
	}
}
