package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"softbrain/internal/core"
)

// Streamed run events. A streaming submission (POST /v1/run?stream=1,
// or Accept: text/event-stream) receives the run lifecycle as
// Server-Sent Events instead of one response body:
//
//	queued   -> started -> progress* -> result | error
//
// The terminal event carries the same typed envelope as the unary
// path — a Response on success, the ErrorBody on failure — so a
// streaming client needs no second decoder. Observers can attach to an
// in-flight run with GET /v1/runs/{id}/events; they replay the full
// event history and then follow live. Event sequence numbers are the
// SSE id field, contiguous from 1 per run.

// Event types, in lifecycle order.
const (
	eventQueued   = "queued"
	eventStarted  = "started"
	eventProgress = "progress"
	eventResult   = "result"
	eventError    = "error"
)

// Event is one streamed run-lifecycle event as it crosses the wire.
type Event struct {
	Seq  int             `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// queuedEvent announces admission into the worker queue.
type queuedEvent struct {
	RunID    string `json:"run_id"`
	Workload string `json:"workload"`
	Scale    int    `json:"scale,omitempty"`
	Queued   int    `json:"queue_depth"` // queue occupancy at admission
}

// startedEvent announces the run leaving the queue for a worker.
type startedEvent struct {
	RunID       string  `json:"run_id"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
}

// progressEvent is one heartbeat frame built from core.ProgressReport.
type progressEvent struct {
	RunID        string `json:"run_id"`
	Cycle        uint64 `json:"cycle"`
	Commands     uint64 `json:"commands"`
	RetiredBytes uint64 `json:"retired_bytes"`
	RetiredDelta uint64 `json:"retired_delta"` // bytes retired since the previous frame
	StallMix     string `json:"stall_mix,omitempty"`
}

// eventHub is a flight's event log plus its live subscribers. Events
// are retained for the flight's lifetime so late subscribers (deduped
// joiners, /v1/runs/{id}/events observers) replay the full history in
// order before following live — the event sequence every consumer sees
// is identical.
type eventHub struct {
	mu     sync.Mutex
	events []Event
	subs   map[chan struct{}]struct{}
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[chan struct{}]struct{})}
}

// publish appends one event and nudges every subscriber. Marshaling
// failures cannot happen for the fixed payload types; they are guarded
// anyway so a heartbeat can never take down a run.
func (h *eventHub) publish(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	h.mu.Lock()
	h.events = append(h.events, Event{Seq: len(h.events) + 1, Type: typ, Data: data})
	for ch := range h.subs {
		select {
		case ch <- struct{}{}:
		default: // already nudged; subscriber will drain the log
		}
	}
	h.mu.Unlock()
}

// since returns the events after the first n, in order.
func (h *eventHub) since(n int) []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n >= len(h.events) {
		return nil
	}
	return h.events[n:len(h.events):len(h.events)]
}

// subscribe registers a nudge channel; drain the log with since.
func (h *eventHub) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *eventHub) unsubscribe(ch chan struct{}) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// writeSSE frames one event per the SSE contract. Data is compact JSON
// (single line), so exactly one data: line per event.
func writeSSE(w io.Writer, ev Event) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
	return err
}

// sseHeaders marks the response as an event stream and commits the
// status line.
func sseHeaders(w http.ResponseWriter, runID string) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	if runID != "" {
		h.Set("X-Run-Id", runID)
	}
	w.WriteHeader(http.StatusOK)
}

// streamCached serves a cache hit over SSE: one terminal event, no
// lifecycle (nothing ran). The result payload is byte-identical to the
// compact encoding of the unary cached response.
func (s *Server) streamCached(w http.ResponseWriter, resp *Response, cerr *apiError) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeJSON(w, http.StatusInternalServerError, errBody(&apiError{
			Status: 500, Kind: KindPanic, Msg: "response writer cannot stream"}))
		return
	}
	sseHeaders(w, "")
	if cerr != nil {
		_ = writeSSE(w, mustEvent(1, eventError, errBody(cerr)))
	} else {
		out := *resp
		out.Cached = true
		_ = writeSSE(w, mustEvent(1, eventResult, &out))
	}
	fl.Flush()
}

// mustEvent marshals a fixed payload type into an Event.
func mustEvent(seq int, typ string, payload any) Event {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte("{}")
	}
	return Event{Seq: seq, Type: typ, Data: data}
}

// streamFlight follows a flight over SSE: replay the event history,
// then live events until the terminal one. A client that disconnects
// mid-stream detaches exactly like a unary waiter — the last waiter
// out cancels the simulation itself.
func (s *Server) streamFlight(w http.ResponseWriter, r *http.Request, f *flight) {
	fl, ok := w.(http.Flusher)
	if !ok {
		f.dropWaiter(errClientGone)
		s.writeJSON(w, http.StatusInternalServerError, errBody(&apiError{
			Status: 500, Kind: KindPanic, Msg: "response writer cannot stream"}))
		return
	}
	sseHeaders(w, f.id)
	fl.Flush()

	sub := f.events.subscribe()
	defer f.events.unsubscribe(sub)

	sent := 0
	emit := func() bool {
		evs := f.events.since(sent)
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return false
			}
		}
		if len(evs) > 0 {
			sent += len(evs)
			fl.Flush()
		}
		return true
	}
	for {
		if !emit() {
			f.dropWaiter(errClientGone)
			return
		}
		select {
		case <-f.done:
			emit() // the terminal event was published before done closed
			f.dropWaiter(nil)
			return
		case <-sub:
		case <-r.Context().Done():
			f.dropWaiter(errClientGone)
			return
		}
	}
}

// handleRunEvents attaches a read-only observer to an in-flight run:
// full history replay, then live until terminal. Observers are not
// waiters — their disconnect never cancels the run.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.runsMu.Lock()
	f := s.runs[id]
	s.runsMu.Unlock()
	if f == nil {
		s.writeError(w, r, &apiError{Status: 404, Kind: KindUnknown,
			Msg: fmt.Sprintf("no in-flight run %q (completed runs are not replayable)", id)})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, &apiError{Status: 500, Kind: KindPanic, Msg: "response writer cannot stream"})
		return
	}
	if info := reqInfoFrom(r.Context()); info != nil {
		info.runID = f.id
	}
	sseHeaders(w, f.id)
	fl.Flush()

	sub := f.events.subscribe()
	defer f.events.unsubscribe(sub)
	sent := 0
	emit := func() bool {
		evs := f.events.since(sent)
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return false
			}
		}
		if len(evs) > 0 {
			sent += len(evs)
			fl.Flush()
		}
		return true
	}
	for {
		if !emit() {
			return
		}
		select {
		case <-f.done:
			emit()
			return
		case <-sub:
		case <-r.Context().Done():
			return
		}
	}
}

// onProgress is the heartbeat sink for one run: snapshot for /statusz,
// a progress frame for stream subscribers, and a debug log line
// joinable by run and request ID.
func (s *Server) onProgress(f *flight, r core.ProgressReport) {
	prev := f.progress.Swap(&r)
	var delta uint64
	if prev == nil {
		delta = r.RetiredBytes
	} else if r.RetiredBytes >= prev.RetiredBytes {
		delta = r.RetiredBytes - prev.RetiredBytes
	}
	f.events.publish(eventProgress, progressEvent{
		RunID:        f.id,
		Cycle:        r.Cycle,
		Commands:     r.Commands,
		RetiredBytes: r.RetiredBytes,
		RetiredDelta: delta,
		StallMix:     r.StallMix,
	})
	s.logger.Debug("run progress",
		"run_id", f.id, "req_id", f.reqID,
		"cycle", r.Cycle, "commands", r.Commands, "retired_bytes", r.RetiredBytes)
}

// wantsStream reports whether the submission asked for SSE delivery.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// StreamOutcome is what the reference client collects from a streamed
// run: the terminal response (or typed error via the returned error),
// and the full event sequence for inspection.
type StreamOutcome struct {
	RunID    string
	Events   []Event
	Progress int // count of progress events observed
	Resp     *Response
}

// SubmitStream performs one streamed request/response exchange: it
// POSTs with ?stream=1, consumes the SSE event sequence, and returns
// the terminal outcome. Pre-stream rejections (400/404/429/503) arrive
// as plain JSON and surface exactly like Submit's; an in-band terminal
// error event surfaces as the same *apiError.
func (c *Client) SubmitStream(ctx context.Context, req Request) (*StreamOutcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run?stream=1", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	if ct := resp.Header.Get("Content-Type"); resp.StatusCode != http.StatusOK || !strings.HasPrefix(ct, "text/event-stream") {
		data, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return nil, rerr
		}
		var eb ErrorBody
		if jerr := json.Unmarshal(data, &eb); jerr != nil || eb.Error.Kind == "" {
			return nil, &apiError{Status: resp.StatusCode, Kind: KindTransport,
				Msg: fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))}
		}
		ae := &apiError{Status: resp.StatusCode, Kind: eb.Error.Kind, Msg: eb.Error.Message}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, ae
	}

	out := &StreamOutcome{RunID: resp.Header.Get("X-Run-Id")}
	var terminalErr *apiError
	err = ReadSSE(resp.Body, func(ev Event) error {
		out.Events = append(out.Events, ev)
		switch ev.Type {
		case eventProgress:
			out.Progress++
		case eventResult:
			var r Response
			if uerr := json.Unmarshal(ev.Data, &r); uerr != nil {
				return uerr
			}
			out.Resp = &r
		case eventError:
			var eb ErrorBody
			if uerr := json.Unmarshal(ev.Data, &eb); uerr != nil {
				return uerr
			}
			terminalErr = &apiError{Status: kindStatus(eb.Error.Kind), Kind: eb.Error.Kind, Msg: eb.Error.Message}
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	if terminalErr != nil {
		return out, terminalErr
	}
	if out.Resp == nil {
		return out, &apiError{Status: 0, Kind: KindTransport, Msg: "event stream ended without a terminal event"}
	}
	return out, nil
}

// kindStatus maps an error kind back to the HTTP status the unary path
// would have used; streamed terminal errors arrive in-band on a 200.
func kindStatus(k ErrKind) int {
	switch k {
	case KindInvalid:
		return 400
	case KindUnknown:
		return 404
	case KindOverload:
		return 429
	case KindDraining:
		return 503
	case KindDeadline:
		return 504
	case KindCanceled:
		return 499
	case KindDeadlock, KindVerify:
		return 422
	default:
		return 500
	}
}

// ReadSSE parses a Server-Sent-Events stream, invoking fn per event in
// order. It understands exactly the framing writeSSE produces (id,
// event, single-line data) and returns when the stream ends.
func ReadSSE(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	var ev Event
	flushEv := func() error {
		if ev.Type == "" && ev.Data == nil {
			return nil
		}
		err := fn(ev)
		ev = Event{}
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flushEv(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				return fmt.Errorf("sse: bad id line %q", line)
			}
			ev.Seq = n
		case strings.HasPrefix(line, "event: "):
			ev.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		case strings.HasPrefix(line, ":"):
			// comment; ignore
		default:
			return fmt.Errorf("sse: unexpected line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flushEv()
}
