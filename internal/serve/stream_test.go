package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"softbrain/internal/core"
	"softbrain/internal/isa"
	"softbrain/internal/obs"
	"softbrain/internal/progen"
	"softbrain/internal/wire"
)

// digitRe collapses every number so transcripts with host-dependent
// values (latencies, seeds) normalize to a stable form.
var digitRe = regexp.MustCompile(`[0-9]+(\.[0-9]+)?`)

func normalizeEvents(evs []Event) string {
	var b strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&b, "event: %s\ndata: %s\n\n", ev.Type, digitRe.ReplaceAllString(string(ev.Data), "N"))
	}
	return b.String()
}

// TestStreamContract pins the event schema: the exact sequence of
// types and the exact (number-normalized) payload shape of each frame.
// A field rename, reorder, or dropped frame breaks this test — which
// is the point: clients parse these bytes.
func TestStreamContract(t *testing.T) {
	_, _, cl := newTestServer(t, Options{Workers: 1, ProgressEvery: -1})
	out, err := cl.SubmitStream(context.Background(), Request{Workload: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	// bfs at scale 1 steps fewer cycles than a heartbeat stride, so the
	// lifecycle is exactly queued -> started -> result.
	const want = `event: queued
data: {"run_id":"rN","workload":"bfs","scale":N,"queue_depth":N}

event: started
data: {"run_id":"rN","queue_wait_ms":N}

event: result
data: {"name":"bfs","units":N,"cycles":N,"verified":true,"cached":false,"stats":{"Cycles":N,"CoreInstrs":N,"CoreStallCycles":N,"Commands":N,"BarrierCycles":N,"ResourceStall":N,"Instances":N,"FUOps":N,"MemBytesRead":N,"MemBytesWritten":N,"MemLines":N,"CacheHits":N,"CacheMisses":N,"ScratchBytesRead":N,"ScratchBytesWrit":N,"RecurrenceBytes":N,"MSEBusy":N,"SSEBusy":N,"RSEBusy":N},"sim_ms":N}

`
	if got := normalizeEvents(out.Events); got != want {
		t.Errorf("normalized stream transcript changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if out.RunID == "" {
		t.Error("X-Run-Id header missing from the stream response")
	}
}

// TestStreamProgressFrames requires a long-enough run to emit progress
// frames, in order, with monotone cycle counts and retired-byte deltas
// consistent with the totals.
func TestStreamProgressFrames(t *testing.T) {
	_, _, cl := newTestServer(t, Options{Workers: 1, ProgressEvery: -1})
	out, err := cl.SubmitStream(context.Background(), Request{Workload: "gemm", Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Progress < 2 {
		t.Fatalf("gemm scale 4 emitted %d progress frames, want >= 2", out.Progress)
	}
	var lastCycle, lastRetired uint64
	seq := 0
	for _, ev := range out.Events {
		seq++
		if ev.Seq != seq {
			t.Fatalf("event %d has seq %d", seq, ev.Seq)
		}
		if ev.Type != eventProgress {
			continue
		}
		var p progressEvent
		if err := json.Unmarshal(ev.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p.Cycle <= lastCycle {
			t.Fatalf("progress cycles not monotone: %d after %d", p.Cycle, lastCycle)
		}
		if p.RetiredBytes < lastRetired {
			t.Fatalf("retired bytes decreased: %d after %d", p.RetiredBytes, lastRetired)
		}
		if p.RetiredDelta != p.RetiredBytes-lastRetired {
			t.Fatalf("retired delta %d, want %d", p.RetiredDelta, p.RetiredBytes-lastRetired)
		}
		lastCycle, lastRetired = p.Cycle, p.RetiredBytes
	}
	if out.Resp == nil || !out.Resp.Verified {
		t.Fatalf("terminal response: %+v", out.Resp)
	}
}

// TestStreamMatchesUnary requires the streamed terminal payload to be
// byte-identical to the compacted unary response body for the same
// cached submission.
func TestStreamMatchesUnary(t *testing.T) {
	_, hs, cl := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	if _, err := cl.Submit(ctx, Request{Workload: "fft"}); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Post(hs.URL+"/v1/run", "application/json", strings.NewReader(`{"workload":"fft"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, body); err != nil {
		t.Fatal(err)
	}

	out, err := cl.SubmitStream(ctx, Request{Workload: "fft"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != 1 || out.Events[0].Type != eventResult {
		t.Fatalf("cached stream events: %s", normalizeEvents(out.Events))
	}
	if !bytes.Equal(bytes.TrimSpace(compact.Bytes()), []byte(out.Events[0].Data)) {
		t.Fatalf("terminal event != compacted unary body:\nunary:  %s\nstream: %s",
			compact.Bytes(), out.Events[0].Data)
	}
}

// starvedProgramRequest builds a raw submission that deadlocks
// deterministically: one dataflow operand stream is short.
func starvedProgramRequest(t *testing.T) Request {
	t.Helper()
	cfg := core.DefaultConfig()
	p, ports, err := progen.Addpair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Emit(isa.MemPort{Src: isa.Linear(0x1000, 16), Dst: ports.A})
	p.Emit(isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: ports.B})
	p.Emit(isa.CleanPort{Src: ports.C, Elem: isa.Elem64, Count: 2})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	wp, err := wire.FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	return Request{Program: &wp, Config: &wire.Config{WatchdogCycles: 20000}}
}

// TestStreamError delivers a deterministic failure in-band: the stream
// terminates with an error event carrying the same typed envelope the
// unary path would, and the client surfaces it as the same *apiError.
func TestStreamError(t *testing.T) {
	_, _, cl := newTestServer(t, Options{Workers: 1})
	out, err := cl.SubmitStream(context.Background(), starvedProgramRequest(t))
	var ae *apiError
	if !errors.As(err, &ae) || ae.Kind != KindDeadlock {
		t.Fatalf("want deadlock error, got %v", err)
	}
	last := out.Events[len(out.Events)-1]
	if last.Type != eventError {
		t.Fatalf("terminal event %s, want error", last.Type)
	}
	var eb ErrorBody
	if err := json.Unmarshal(last.Data, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Kind != KindDeadlock || eb.Error.Retryable {
		t.Fatalf("error envelope: %+v", eb)
	}
}

// TestStreamDisconnectDetaches drops the SSE connection after the
// first progress frame. The server must detach the waiter, cancel the
// simulation (last waiter out), and retire the flight — with no
// goroutine left behind.
func TestStreamDisconnectDetaches(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 1, ProgressEvery: -1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/run?stream=1",
		strings.NewReader(`{"workload":"viterbi","scale":8}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read frames until the first progress event, then hang up.
	sc := bufio.NewScanner(resp.Body)
	sawProgress := false
	for sc.Scan() && !sawProgress {
		if strings.HasPrefix(sc.Text(), "event: progress") {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Fatal("stream ended before any progress event")
	}
	cancel()

	deadline := time.After(10 * time.Second)
	for s.Counters().Canceled == 0 {
		select {
		case <-deadline:
			t.Fatalf("run never canceled after client disconnect: %+v", s.Counters())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if c := s.Counters(); c.Completed != 0 {
		t.Fatalf("disconnected run completed anyway: %+v", c)
	}
	for s.inflightRuns() != 0 {
		select {
		case <-deadline:
			t.Fatalf("flight not retired after cancel")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestRunsIntrospection holds a run on a gate and requires /statusz to
// report it live: id, workload, running state, and deadline budget.
func TestRunsIntrospection(t *testing.T) {
	release := make(chan struct{})
	testHookExecute = func(*runRequest) { <-release }
	defer func() { testHookExecute = nil }()

	s, hs, cl := newTestServer(t, Options{Workers: 1})
	done := make(chan error, 1)
	go func() {
		_, err := cl.Submit(context.Background(), Request{Workload: "spmv-crs"})
		done <- err
	}()

	var row runRow
	deadline := time.After(10 * time.Second)
	for {
		rows := s.liveRuns()
		if len(rows) == 1 && rows[0].State == "running" {
			row = rows[0]
			break
		}
		select {
		case <-deadline:
			t.Fatalf("run never appeared in /statusz rows: %+v", rows)
		case <-time.After(2 * time.Millisecond):
		}
	}
	if row.Workload != "spmv-crs" || row.ID == "" || row.Waiters != 1 {
		t.Fatalf("run row: %+v", row)
	}
	if row.DeadlineMS <= 0 {
		t.Fatalf("deadline remaining %v, want > 0", row.DeadlineMS)
	}

	// The wire view agrees with the internal snapshot.
	body, err := rawGet(context.Background(), hs.URL+"/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Runs []runRow `json:"runs"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Runs) != 1 || st.Runs[0].ID != row.ID {
		t.Fatalf("/statusz runs: %+v", st.Runs)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rows := s.liveRuns(); len(rows) != 0 {
		t.Fatalf("completed run still introspectable: %+v", rows)
	}
}

// TestRunEventsAttach joins an in-flight run read-only via
// /v1/runs/{id}/events: full history replay, then live events through
// the terminal one — without becoming a waiter.
func TestRunEventsAttach(t *testing.T) {
	release := make(chan struct{})
	testHookExecute = func(*runRequest) { <-release }
	defer func() { testHookExecute = nil }()

	s, hs, cl := newTestServer(t, Options{Workers: 1})
	done := make(chan error, 1)
	go func() {
		_, err := cl.Submit(context.Background(), Request{Workload: "md-knn"})
		done <- err
	}()

	deadline := time.After(10 * time.Second)
	var runID string
	for runID == "" {
		if rows := s.liveRuns(); len(rows) == 1 && rows[0].State == "running" {
			runID = rows[0].ID
		}
		select {
		case <-deadline:
			t.Fatal("run never started")
		case <-time.After(2 * time.Millisecond):
		}
	}

	evdone := make(chan []Event, 1)
	go func() {
		resp, err := hs.Client().Get(hs.URL + "/v1/runs/" + runID + "/events")
		if err != nil {
			evdone <- nil
			return
		}
		defer resp.Body.Close()
		var evs []Event
		_ = ReadSSE(resp.Body, func(ev Event) error { evs = append(evs, ev); return nil })
		evdone <- evs
	}()

	time.Sleep(20 * time.Millisecond) // let the observer attach and replay
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	evs := <-evdone
	var types []string
	for _, ev := range evs {
		types = append(types, ev.Type)
	}
	joined := strings.Join(types, " ")
	if len(evs) < 3 || types[0] != eventQueued || types[1] != eventStarted || types[len(types)-1] != eventResult {
		t.Fatalf("observer transcript: %s", joined)
	}

	// Unknown run IDs reject with a typed 404.
	resp, err := hs.Client().Get(hs.URL + "/v1/runs/zzz/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), string(KindUnknown)) {
		t.Fatalf("unknown run: status %d body %s", resp.StatusCode, body)
	}
}

// TestFaultsOnWire covers the per-request fault block: seeded profiles
// stay deterministic and cacheable, unseeded ones draw a server-side
// seed and bypass the cache, and invalid blocks reject typed.
func TestFaultsOnWire(t *testing.T) {
	s, _, cl := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	seed := int64(7)
	seeded := Request{Workload: "bfs", Faults: &FaultsBlock{Profile: "delay", Seed: &seed}}
	first, err := cl.Submit(ctx, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.FaultSeed != 0 {
		t.Fatalf("seeded first run: %+v", first)
	}
	second, err := cl.Submit(ctx, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Cycles != first.Cycles {
		t.Fatalf("seeded resubmission should hit the cache: %+v", second)
	}

	// A fault-free bfs run reaches a different cycle count than the
	// delayed one — the profile actually did something.
	clean, err := cl.Submit(ctx, Request{Workload: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Cycles == first.Cycles {
		t.Fatalf("delay profile had no effect: both %d cycles", clean.Cycles)
	}

	unseeded := Request{Workload: "bfs", Faults: &FaultsBlock{Profile: "delay"}}
	u1, err := cl.Submit(ctx, unseeded)
	if err != nil {
		t.Fatal(err)
	}
	if u1.Cached || u1.FaultSeed == 0 {
		t.Fatalf("unseeded run: %+v", u1)
	}
	u2, err := cl.Submit(ctx, unseeded)
	if err != nil {
		t.Fatal(err)
	}
	if u2.Cached || u2.FaultSeed == 0 || u2.FaultSeed == u1.FaultSeed {
		t.Fatalf("unseeded resubmission must re-draw, not hit the cache: first seed %d, second %+v",
			u1.FaultSeed, u2)
	}
	if c := s.Counters(); c.CacheHits != 1 {
		t.Fatalf("cache hits %d, want exactly the seeded resubmission", c.CacheHits)
	}

	if _, err := cl.Submit(ctx, Request{Workload: "bfs", Faults: &FaultsBlock{Profile: "no-such"}}); !isKind(err, KindInvalid) {
		t.Fatalf("unknown profile: %v", err)
	}
	conflicted := `{"workload":"bfs","faults":{"profile":"delay","seed":1},"config":{"faults":{"profile":"stall"}}}`
	if err := submitRaw(cl, conflicted); !isKind(err, KindInvalid) {
		t.Fatalf("conflicting fault blocks: %v", err)
	}
}

func isKind(err error, kind ErrKind) bool {
	var ae *apiError
	return errors.As(err, &ae) && ae.Kind == kind
}

func submitRaw(cl *Client, body string) error {
	resp, err := cl.httpClient().Post(cl.BaseURL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	var eb ErrorBody
	if jerr := json.Unmarshal(data, &eb); jerr != nil {
		return jerr
	}
	return &apiError{Status: resp.StatusCode, Kind: eb.Error.Kind, Msg: eb.Error.Message}
}

// syncWriter serializes concurrent slog writes during tests.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRequestLogJoinable requires every request to produce one
// structured log line carrying the request ID (client-supplied when
// sane) and, for submissions, the run ID — so a 4xx/5xx in the log
// joins to its run and its stream.
func TestRequestLogJoinable(t *testing.T) {
	logw := &syncWriter{}
	logger := slog.New(slog.NewTextHandler(logw, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s, hs, _ := newTestServer(t, Options{Workers: 1, ProgressEvery: -1, Logger: logger})

	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/run", strings.NewReader(`{"workload":"gemm","scale":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "join-me-42")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "join-me-42" {
		t.Fatalf("X-Request-Id echoed as %q", got)
	}

	// A typed failure logs at warn with its kind.
	bad, err := hs.Client().Post(hs.URL+"/v1/run", "application/json", strings.NewReader(`{"workload":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()

	logs := logw.String()
	reqLine := ""
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "req_id=join-me-42") && strings.Contains(line, "msg=request") {
			reqLine = line
		}
	}
	if reqLine == "" {
		t.Fatalf("no request log line for join-me-42:\n%s", logs)
	}
	for _, want := range []string{"method=POST", "path=/v1/run", "status=200", "run_id=r"} {
		if !strings.Contains(reqLine, want) {
			t.Errorf("request line missing %q: %s", want, reqLine)
		}
	}
	// The run's progress debug lines join on the same request ID.
	if !strings.Contains(logs, `msg="run progress"`) || !strings.Contains(logs, "req_id=join-me-42 cycle=") {
		t.Errorf("progress debug lines not joinable:\n%s", logs)
	}
	if !strings.Contains(logs, "level=WARN") || !strings.Contains(logs, "kind=unknown-workload") {
		t.Errorf("typed failure not logged at warn with its kind:\n%s", logs)
	}
	if s.Counters().Completed != 1 {
		t.Fatalf("counters: %+v", s.Counters())
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and holds it
// to the exposition lint plus agreement with the counters.
func TestMetricsEndpoint(t *testing.T) {
	s, hs, cl := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	if _, err := cl.Submit(ctx, Request{Workload: "stencil2d", Options: RunOptions{Metrics: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(ctx, Request{Workload: "stencil2d", Options: RunOptions{Metrics: true}}); err != nil {
		t.Fatal(err)
	}

	expo, err := rawGet(ctx, hs.URL+"/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(expo); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, expo)
	}
	for _, want := range []string{
		"serve_completed_total 1",
		"serve_cache_hits_total 1",
		"serve_run_cycles_total",
		"serve_run_retired_bytes_total",
		"serve_sched_comp_ticks_total",
		`serve_request_duration_seconds_bucket{path="/v1/run",le="+Inf"}`,
		`serve_run_stall_cycles_total{component="dispatch"`,
		"serve_workers 1",
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	completed, err := promValue(expo, "serve_completed_total")
	if err != nil {
		t.Fatal(err)
	}
	if uint64(completed) != s.Counters().Completed {
		t.Errorf("serve_completed_total %v != counter %d", completed, s.Counters().Completed)
	}
}

// TestPprofGated requires the profiling endpoints to be absent by
// default and mounted under the opt-in flag.
func TestPprofGated(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Workers: 1})
	resp, err := hs.Client().Get(hs.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mounted without the flag: status %d", resp.StatusCode)
	}

	_, hs2, _ := newTestServer(t, Options{Workers: 1, EnablePprof: true})
	resp2, err := hs2.Client().Get(hs2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof absent with the flag: status %d", resp2.StatusCode)
	}
}
