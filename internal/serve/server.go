// Package serve turns the simulator into a hardened network service:
// bounded-concurrency simulation-as-a-service with admission control,
// per-request deadlines layered on the cycle watchdog, content-
// addressed result caching with singleflight dedup, panic isolation,
// and graceful drain.
//
// The degradation ladder is explicit. A healthy server simulates; a
// busy server queues; a full server sheds with 429 + Retry-After
// (never an unbounded goroutine pile-up); a draining server rejects
// new work with 503 while finishing what it accepted.
package serve

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel cancellation causes. They flow through context.Cause into
// core.CanceledError.Err, where classify maps them back to API kinds.
var (
	errDeadline   = errors.New("serve: request wall-clock budget exhausted")
	errDraining   = errors.New("serve: server draining")
	errClientGone = errors.New("serve: every waiting client disconnected")
)

// Options sizes the service. Zero values take the defaults noted on
// each field.
type Options struct {
	Workers        int           // simulation worker pool size (default: GOMAXPROCS)
	QueueDepth     int           // admission queue bound (default: 2×Workers)
	MaxBodyBytes   int64         // request body cap (default: 8 MiB)
	DefaultTimeout time.Duration // per-request wall budget when unspecified (default: 30s)
	MaxTimeout     time.Duration // ceiling on client-requested budgets (default: 2m)
	CacheEntries   int           // result cache capacity (default: 256; negative disables)
	DrainGrace     time.Duration // how long Drain lets in-flight runs finish (default: 10s)
	RetryAfter     time.Duration // hint attached to 429/503 (default: 1s)

	ProgressEvery time.Duration // heartbeat interval for progress events (default: 250ms; negative = every stride)
	EnablePprof   bool          // mount net/http/pprof under /debug/pprof/
	Logger        *slog.Logger  // structured request log sink (default: discard)
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.DrainGrace == 0 {
		o.DrainGrace = 10 * time.Second
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
	switch {
	case o.ProgressEvery == 0:
		o.ProgressEvery = 250 * time.Millisecond
	case o.ProgressEvery < 0:
		o.ProgressEvery = 0 // every heartbeat stride
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// Counters is a snapshot of the service counters, published at
// /statusz and asserted by the soak test.
type Counters struct {
	Accepted  uint64 `json:"accepted"`   // admitted into the queue
	Completed uint64 `json:"completed"`  // finished with a 200
	Failed    uint64 `json:"failed"`     // finished with a typed failure
	Shed      uint64 `json:"shed"`       // 429: queue full
	Rejected  uint64 `json:"rejected"`   // 503: draining
	CacheHits uint64 `json:"cache_hits"` // served from the result cache
	Deduped   uint64 `json:"deduped"`    // joined an identical in-flight run
	Canceled  uint64 `json:"canceled"`   // flights canceled before completing
	Panics    uint64 `json:"panics"`     // panics contained by worker isolation
}

// Server is the simulation service. Create with New, mount as an
// http.Handler, and call Drain on shutdown.
type Server struct {
	opts    Options
	cache   *cache
	flights *flightGroup
	queue   chan *flight
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	wg         sync.WaitGroup

	drainMu  sync.RWMutex
	draining bool

	logger  *slog.Logger
	metrics *serverMetrics

	runSeq      atomic.Uint64 // run ID allocator
	workersBusy atomic.Int64  // workers executing right now
	runsMu      sync.Mutex
	runs        map[string]*flight // in-flight runs by ID, for /statusz and event attach

	accepted, completed, failed   atomic.Uint64
	shed, rejected                atomic.Uint64
	cacheHits, dedupWaits         atomic.Uint64
	canceledRuns, panicsContained atomic.Uint64
}

// New builds the server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		cache:   newCache(opts.CacheEntries),
		flights: newFlightGroup(),
		queue:   make(chan *flight, opts.QueueDepth),
		mux:     http.NewServeMux(),
		logger:  opts.Logger,
		metrics: newServerMetrics(),
		runs:    make(map[string]*flight),
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// reqInfo is the per-request telemetry record the middleware threads
// through the handler: the request ID every log line carries, and the
// run ID / error kind handlers fill in as the request resolves.
type reqInfo struct {
	id    string
	runID string
	kind  ErrKind
}

type reqInfoKey struct{}

// reqInfoFrom returns the request's telemetry record, or nil for a
// request that did not pass through the middleware (direct handler
// calls in tests).
func reqInfoFrom(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return info
}

// statusWriter captures the response status for the request log and
// forwards Flush so SSE streaming survives the wrapping.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID accepts a sane client-supplied X-Request-Id or mints one.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= 64 && !strings.ContainsAny(id, " \t\r\n\"") {
		return id
	}
	var b [8]byte
	_, _ = crand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// routeLabel buckets a request path onto its route pattern, so the
// latency histograms keep bounded cardinality.
func routeLabel(r *http.Request) string {
	path := r.URL.Path
	switch {
	case path == "/v1/run":
		return "/v1/run"
	case strings.HasPrefix(path, "/v1/runs/"):
		return "/v1/runs/{id}/events"
	case path == "/healthz", path == "/readyz", path == "/statusz", path == "/metrics":
		return path
	case strings.HasPrefix(path, "/debug/pprof/"):
		return "/debug/pprof/"
	}
	return "other"
}

// ServeHTTP wraps every request in the telemetry middleware: a request
// ID (accepted or minted), response-status capture, per-route latency
// observation, and one structured log line joinable to the run it
// produced. Every 429, 499, 504, and contained panic is attributable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	info := &reqInfo{id: requestID(r)}
	r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info))
	sw := &statusWriter{ResponseWriter: w}
	sw.Header().Set("X-Request-Id", info.id)

	s.mux.ServeHTTP(sw, r)

	status := sw.status
	if status == 0 {
		// Nothing was written: the handler detached because the client
		// disconnected mid-wait. 499 is the conventional status for it.
		status = 499
		if r.Context().Err() == nil {
			status = http.StatusOK
		}
	}
	dur := time.Since(start)
	s.metrics.observe(routeLabel(r), dur)

	lvl := slog.LevelInfo
	switch {
	case status >= 500:
		lvl = slog.LevelError
	case status >= 400:
		lvl = slog.LevelWarn
	}
	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"dur_ms", float64(dur.Microseconds()) / 1e3,
		"req_id", info.id,
	}
	if info.runID != "" {
		attrs = append(attrs, "run_id", info.runID)
	}
	if info.kind != "" {
		attrs = append(attrs, "kind", string(info.kind))
	}
	s.logger.Log(r.Context(), lvl, "request", attrs...)
}

// Counters returns a snapshot of the service counters.
func (s *Server) Counters() Counters {
	return Counters{
		Accepted:  s.accepted.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Shed:      s.shed.Load(),
		Rejected:  s.rejected.Load(),
		CacheHits: s.cacheHits.Load(),
		Deduped:   s.dedupWaits.Load(),
		Canceled:  s.canceledRuns.Load(),
		Panics:    s.panicsContained.Load(),
	}
}

// Drain performs graceful shutdown: stop admitting, let in-flight and
// queued runs finish within the grace window, then cancel whatever is
// left and wait for the workers to exit. It is safe to call once.
func (s *Server) Drain() {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if already {
		return
	}
	// No admission can race this close: enqueue holds drainMu.RLock and
	// re-checks the flag before sending.
	close(s.queue)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.opts.DrainGrace):
		s.baseCancel(errDraining)
		<-done
	}
	s.baseCancel(errDraining) // release the base context in the prompt path too
}

// enqueue admits a flight or reports why it cannot: draining (503) or
// queue full (429). The read lock orders admission against Drain's
// close of the queue, so there is never a send on a closed channel.
func (s *Server) enqueue(f *flight) *apiError {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		s.rejected.Add(1)
		return &apiError{Status: 503, Kind: KindDraining, Msg: "server is draining; retry against another instance"}
	}
	select {
	case s.queue <- f:
		s.accepted.Add(1)
		return nil
	default:
		s.shed.Add(1)
		return &apiError{Status: 429, Kind: KindOverload,
			Msg: fmt.Sprintf("admission queue full (%d queued, %d workers)", s.opts.QueueDepth, s.opts.Workers)}
	}
}

// worker executes queued flights until the queue closes. Each run is
// panic-isolated: a fault in one request becomes that request's 500,
// never the process's crash.
func (s *Server) worker() {
	defer s.wg.Done()
	for f := range s.queue {
		s.runFlight(f)
	}
}

func (s *Server) runFlight(f *flight) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsContained.Add(1)
			s.logger.Error("panic contained",
				"run_id", f.id, "req_id", f.reqID, "panic", fmt.Sprint(r))
			s.flights.forget(f.key)
			s.forgetRun(f)
			f.finish(nil, &apiError{Status: 500, Kind: KindPanic,
				Msg: fmt.Sprintf("panic: %v\n%s", r, debug.Stack())})
		}
	}()
	if f.ctx.Err() != nil {
		// Canceled while queued: deadline passed, all waiters left, or
		// the drain grace expired. Don't burn a worker on it.
		cause := context.Cause(f.ctx)
		ae := &apiError{Status: 499, Kind: KindCanceled, Msg: fmt.Sprintf("canceled while queued: %v", cause)}
		switch {
		case errors.Is(cause, errDeadline):
			ae = &apiError{Status: 504, Kind: KindDeadline, Msg: "wall-clock budget exhausted while queued"}
		case errors.Is(cause, errDraining):
			ae = &apiError{Status: 503, Kind: KindDraining, Msg: "server draining; queued run canceled"}
		}
		s.finishFlight(f, nil, ae)
		return
	}
	s.workersBusy.Add(1)
	defer s.workersBusy.Add(-1)
	f.startedNS.Store(time.Now().UnixNano())
	f.events.publish(eventStarted, startedEvent{
		RunID:       f.id,
		QueueWaitMS: float64(time.Since(f.submitted).Microseconds()) / 1e3,
	})
	resp, aerr := s.execute(f.ctx, f)
	s.finishFlight(f, resp, aerr)
}

// finishFlight publishes an outcome: cache deterministic results,
// retire the singleflight entry, wake the waiters, bump counters.
func (s *Server) finishFlight(f *flight, resp *Response, aerr *apiError) {
	if cacheable(aerr) && !f.req.bypassCache {
		s.cache.put(f.key, resp, aerr)
	}
	s.flights.forget(f.key)
	s.forgetRun(f)
	f.finish(resp, aerr)
	switch {
	case aerr == nil:
		s.completed.Add(1)
	case aerr.Kind == KindCanceled || aerr.Kind == KindDeadline || aerr.Kind == KindDraining:
		s.canceledRuns.Add(1)
	default:
		s.failed.Add(1)
	}
}

// registerRun indexes an admitted flight by run ID for /statusz rows
// and event attachment; forgetRun retires it on completion.
func (s *Server) registerRun(f *flight) {
	s.runsMu.Lock()
	s.runs[f.id] = f
	s.runsMu.Unlock()
}

func (s *Server) forgetRun(f *flight) {
	s.runsMu.Lock()
	delete(s.runs, f.id)
	s.runsMu.Unlock()
}

// inflightRuns counts runs currently queued or executing.
func (s *Server) inflightRuns() int {
	s.runsMu.Lock()
	defer s.runsMu.Unlock()
	return len(s.runs)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	stream := wantsStream(r)
	body, rerr := readBody(w, r, s.opts.MaxBodyBytes)
	if rerr != nil {
		s.writeError(w, r, rerr)
		return
	}
	rr, aerr := s.decodeRequest(body)
	if aerr != nil {
		s.writeError(w, r, aerr)
		return
	}
	key, kerr := rr.cacheKey()
	if kerr != nil {
		s.writeError(w, r, &apiError{Status: 400, Kind: KindInvalid, Msg: kerr.Error()})
		return
	}

	if !rr.bypassCache {
		if resp, cerr, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			if stream {
				s.streamCached(w, resp, cerr)
				return
			}
			if cerr != nil {
				s.writeError(w, r, cerr)
				return
			}
			out := *resp
			out.Cached = true
			s.writeJSON(w, http.StatusOK, &out)
			return
		}
	}

	fctx, fcancel := context.WithCancelCause(s.baseCtx)
	now := time.Now()
	fresh := &flight{
		key:       key,
		id:        fmt.Sprintf("r%06d", s.runSeq.Add(1)),
		req:       rr,
		reqID:     requestIDFrom(r),
		submitted: now,
		deadline:  now.Add(rr.timeout),
		ctx:       fctx,
		cancel:    fcancel,
		events:    newEventHub(),
		done:      make(chan struct{}),
	}
	fresh.timer = time.AfterFunc(rr.timeout, func() { fcancel(errDeadline) })

	f := s.flights.join(key, fresh)
	deduped := f != nil
	if deduped {
		s.dedupWaits.Add(1)
		fcancel(nil) // the fresh flight never runs; release its context
		fresh.timer.Stop()
	} else {
		f = fresh
		// The admission event precedes enqueue so no subscriber can ever
		// observe started before queued, however fast a worker picks the
		// flight up.
		f.events.publish(eventQueued, queuedEvent{
			RunID:    f.id,
			Workload: rr.name,
			Scale:    rr.scale,
			Queued:   len(s.queue),
		})
		s.registerRun(f)
		if qerr := s.enqueue(f); qerr != nil {
			s.flights.forget(key)
			s.forgetRun(f)
			f.dropWaiter(errClientGone)
			s.writeError(w, r, qerr)
			return
		}
	}
	if info := reqInfoFrom(r.Context()); info != nil {
		info.runID = f.id
	}

	if stream {
		s.streamFlight(w, r, f)
		return
	}

	select {
	case <-f.done:
		f.dropWaiter(nil) // flight already finished; bookkeeping only
		if f.err != nil {
			s.writeError(w, r, f.err)
			return
		}
		out := *f.resp
		out.Deduped = deduped
		s.writeJSON(w, http.StatusOK, &out)
	case <-r.Context().Done():
		// This client is gone. Leave the flight to any other waiters;
		// the last one out cancels the simulation itself.
		f.dropWaiter(errClientGone)
		if info := reqInfoFrom(r.Context()); info != nil {
			info.kind = KindCanceled
		}
	}
}

// requestIDFrom recovers the middleware's request ID for joining run
// telemetry to the originating submission's log lines.
func requestIDFrom(r *http.Request) string {
	if info := reqInfoFrom(r.Context()); info != nil {
		return info.id
	}
	return ""
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, *apiError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, &apiError{Status: http.StatusRequestEntityTooLarge, Kind: KindInvalid,
				Msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: err.Error()}
	}
	return body, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	if draining {
		w.Header().Set("Retry-After", retryAfter(s.opts.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// runRow is one in-flight run as /statusz reports it.
type runRow struct {
	ID           string  `json:"id"`
	Workload     string  `json:"workload"`
	State        string  `json:"state"` // "queued" or "running"
	Waiters      int     `json:"waiters"`
	Cycle        uint64  `json:"cycle"`
	Commands     uint64  `json:"commands"`
	RetiredBytes uint64  `json:"retired_bytes"`
	QueueWaitMS  float64 `json:"queue_wait_ms"`
	RunningMS    float64 `json:"running_ms"`
	DeadlineMS   float64 `json:"deadline_remaining_ms"`
}

// liveRuns snapshots the in-flight runs, sorted by run ID.
func (s *Server) liveRuns() []runRow {
	now := time.Now()
	s.runsMu.Lock()
	flights := make([]*flight, 0, len(s.runs))
	for _, f := range s.runs {
		flights = append(flights, f)
	}
	s.runsMu.Unlock()
	sort.Slice(flights, func(i, j int) bool { return flights[i].id < flights[j].id })

	rows := make([]runRow, 0, len(flights))
	for _, f := range flights {
		row := runRow{
			ID:         f.id,
			Workload:   f.req.name,
			State:      "queued",
			Waiters:    f.waiterCount(),
			DeadlineMS: float64(f.deadline.Sub(now).Microseconds()) / 1e3,
		}
		if started, ok := f.started(); ok {
			row.State = "running"
			row.QueueWaitMS = float64(started.Sub(f.submitted).Microseconds()) / 1e3
			row.RunningMS = float64(now.Sub(started).Microseconds()) / 1e3
		} else {
			row.QueueWaitMS = float64(now.Sub(f.submitted).Microseconds()) / 1e3
		}
		if pr := f.progress.Load(); pr != nil {
			row.Cycle = pr.Cycle
			row.Commands = pr.Commands
			row.RetiredBytes = pr.RetiredBytes
		}
		rows = append(rows, row)
	}
	return rows
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	type status struct {
		Counters Counters `json:"counters"`
		Queue    int      `json:"queue_len"`
		Workers  int      `json:"workers"`
		Busy     int      `json:"workers_busy"`
		Cache    int      `json:"cache_entries"`
		Runs     []runRow `json:"runs"`
	}
	s.writeJSON(w, http.StatusOK, status{
		Counters: s.Counters(),
		Queue:    len(s.queue),
		Workers:  s.opts.Workers,
		Busy:     int(s.workersBusy.Load()),
		Cache:    s.cache.len(),
		Runs:     s.liveRuns(),
	})
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, e *apiError) {
	if r != nil {
		if info := reqInfoFrom(r.Context()); info != nil {
			info.kind = e.Kind
		}
	}
	if e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfter(s.opts.RetryAfter))
	}
	s.writeJSON(w, e.Status, errBody(e))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client hung up; nothing useful to do
}

func retryAfter(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
