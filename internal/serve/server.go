// Package serve turns the simulator into a hardened network service:
// bounded-concurrency simulation-as-a-service with admission control,
// per-request deadlines layered on the cycle watchdog, content-
// addressed result caching with singleflight dedup, panic isolation,
// and graceful drain.
//
// The degradation ladder is explicit. A healthy server simulates; a
// busy server queues; a full server sheds with 429 + Retry-After
// (never an unbounded goroutine pile-up); a draining server rejects
// new work with 503 while finishing what it accepted.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel cancellation causes. They flow through context.Cause into
// core.CanceledError.Err, where classify maps them back to API kinds.
var (
	errDeadline   = errors.New("serve: request wall-clock budget exhausted")
	errDraining   = errors.New("serve: server draining")
	errClientGone = errors.New("serve: every waiting client disconnected")
)

// Options sizes the service. Zero values take the defaults noted on
// each field.
type Options struct {
	Workers        int           // simulation worker pool size (default: GOMAXPROCS)
	QueueDepth     int           // admission queue bound (default: 2×Workers)
	MaxBodyBytes   int64         // request body cap (default: 8 MiB)
	DefaultTimeout time.Duration // per-request wall budget when unspecified (default: 30s)
	MaxTimeout     time.Duration // ceiling on client-requested budgets (default: 2m)
	CacheEntries   int           // result cache capacity (default: 256; negative disables)
	DrainGrace     time.Duration // how long Drain lets in-flight runs finish (default: 10s)
	RetryAfter     time.Duration // hint attached to 429/503 (default: 1s)
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.DrainGrace == 0 {
		o.DrainGrace = 10 * time.Second
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Counters is a snapshot of the service counters, published at
// /statusz and asserted by the soak test.
type Counters struct {
	Accepted  uint64 `json:"accepted"`   // admitted into the queue
	Completed uint64 `json:"completed"`  // finished with a 200
	Failed    uint64 `json:"failed"`     // finished with a typed failure
	Shed      uint64 `json:"shed"`       // 429: queue full
	Rejected  uint64 `json:"rejected"`   // 503: draining
	CacheHits uint64 `json:"cache_hits"` // served from the result cache
	Deduped   uint64 `json:"deduped"`    // joined an identical in-flight run
	Canceled  uint64 `json:"canceled"`   // flights canceled before completing
	Panics    uint64 `json:"panics"`     // panics contained by worker isolation
}

// Server is the simulation service. Create with New, mount as an
// http.Handler, and call Drain on shutdown.
type Server struct {
	opts    Options
	cache   *cache
	flights *flightGroup
	queue   chan *flight
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	wg         sync.WaitGroup

	drainMu  sync.RWMutex
	draining bool

	accepted, completed, failed   atomic.Uint64
	shed, rejected                atomic.Uint64
	cacheHits, dedupWaits         atomic.Uint64
	canceledRuns, panicsContained atomic.Uint64
}

// New builds the server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		cache:   newCache(opts.CacheEntries),
		flights: newFlightGroup(),
		queue:   make(chan *flight, opts.QueueDepth),
		mux:     http.NewServeMux(),
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Counters returns a snapshot of the service counters.
func (s *Server) Counters() Counters {
	return Counters{
		Accepted:  s.accepted.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Shed:      s.shed.Load(),
		Rejected:  s.rejected.Load(),
		CacheHits: s.cacheHits.Load(),
		Deduped:   s.dedupWaits.Load(),
		Canceled:  s.canceledRuns.Load(),
		Panics:    s.panicsContained.Load(),
	}
}

// Drain performs graceful shutdown: stop admitting, let in-flight and
// queued runs finish within the grace window, then cancel whatever is
// left and wait for the workers to exit. It is safe to call once.
func (s *Server) Drain() {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if already {
		return
	}
	// No admission can race this close: enqueue holds drainMu.RLock and
	// re-checks the flag before sending.
	close(s.queue)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.opts.DrainGrace):
		s.baseCancel(errDraining)
		<-done
	}
	s.baseCancel(errDraining) // release the base context in the prompt path too
}

// enqueue admits a flight or reports why it cannot: draining (503) or
// queue full (429). The read lock orders admission against Drain's
// close of the queue, so there is never a send on a closed channel.
func (s *Server) enqueue(f *flight) *apiError {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		s.rejected.Add(1)
		return &apiError{Status: 503, Kind: KindDraining, Msg: "server is draining; retry against another instance"}
	}
	select {
	case s.queue <- f:
		s.accepted.Add(1)
		return nil
	default:
		s.shed.Add(1)
		return &apiError{Status: 429, Kind: KindOverload,
			Msg: fmt.Sprintf("admission queue full (%d queued, %d workers)", s.opts.QueueDepth, s.opts.Workers)}
	}
}

// worker executes queued flights until the queue closes. Each run is
// panic-isolated: a fault in one request becomes that request's 500,
// never the process's crash.
func (s *Server) worker() {
	defer s.wg.Done()
	for f := range s.queue {
		s.runFlight(f)
	}
}

func (s *Server) runFlight(f *flight) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsContained.Add(1)
			s.flights.forget(f.key)
			f.finish(nil, &apiError{Status: 500, Kind: KindPanic,
				Msg: fmt.Sprintf("panic: %v\n%s", r, debug.Stack())})
		}
	}()
	if f.ctx.Err() != nil {
		// Canceled while queued: deadline passed, all waiters left, or
		// the drain grace expired. Don't burn a worker on it.
		cause := context.Cause(f.ctx)
		ae := &apiError{Status: 499, Kind: KindCanceled, Msg: fmt.Sprintf("canceled while queued: %v", cause)}
		switch {
		case errors.Is(cause, errDeadline):
			ae = &apiError{Status: 504, Kind: KindDeadline, Msg: "wall-clock budget exhausted while queued"}
		case errors.Is(cause, errDraining):
			ae = &apiError{Status: 503, Kind: KindDraining, Msg: "server draining; queued run canceled"}
		}
		s.finishFlight(f, nil, ae)
		return
	}
	resp, aerr := s.execute(f.ctx, f.req)
	s.finishFlight(f, resp, aerr)
}

// finishFlight publishes an outcome: cache deterministic results,
// retire the singleflight entry, wake the waiters, bump counters.
func (s *Server) finishFlight(f *flight, resp *Response, aerr *apiError) {
	if cacheable(aerr) {
		s.cache.put(f.key, resp, aerr)
	}
	s.flights.forget(f.key)
	f.finish(resp, aerr)
	switch {
	case aerr == nil:
		s.completed.Add(1)
	case aerr.Kind == KindCanceled || aerr.Kind == KindDeadline || aerr.Kind == KindDraining:
		s.canceledRuns.Add(1)
	default:
		s.failed.Add(1)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, rerr := readBody(w, r, s.opts.MaxBodyBytes)
	if rerr != nil {
		s.writeError(w, rerr)
		return
	}
	rr, aerr := s.decodeRequest(body)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	key, kerr := rr.cacheKey()
	if kerr != nil {
		s.writeError(w, &apiError{Status: 400, Kind: KindInvalid, Msg: kerr.Error()})
		return
	}

	if resp, cerr, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		if cerr != nil {
			s.writeError(w, cerr)
			return
		}
		out := *resp
		out.Cached = true
		s.writeJSON(w, http.StatusOK, &out)
		return
	}

	fctx, fcancel := context.WithCancelCause(s.baseCtx)
	fresh := &flight{key: key, req: rr, ctx: fctx, cancel: fcancel, done: make(chan struct{})}
	fresh.timer = time.AfterFunc(rr.timeout, func() { fcancel(errDeadline) })

	f := s.flights.join(key, fresh)
	deduped := f != nil
	if deduped {
		s.dedupWaits.Add(1)
		fcancel(nil) // the fresh flight never runs; release its context
		fresh.timer.Stop()
	} else {
		f = fresh
		if qerr := s.enqueue(f); qerr != nil {
			s.flights.forget(key)
			f.dropWaiter(errClientGone)
			s.writeError(w, qerr)
			return
		}
	}

	select {
	case <-f.done:
		f.dropWaiter(nil) // flight already finished; bookkeeping only
		if f.err != nil {
			s.writeError(w, f.err)
			return
		}
		out := *f.resp
		out.Deduped = deduped
		s.writeJSON(w, http.StatusOK, &out)
	case <-r.Context().Done():
		// This client is gone. Leave the flight to any other waiters;
		// the last one out cancels the simulation itself.
		f.dropWaiter(errClientGone)
	}
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, *apiError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, &apiError{Status: http.StatusRequestEntityTooLarge, Kind: KindInvalid,
				Msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return nil, &apiError{Status: 400, Kind: KindInvalid, Msg: err.Error()}
	}
	return body, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	if draining {
		w.Header().Set("Retry-After", retryAfter(s.opts.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	type status struct {
		Counters Counters `json:"counters"`
		Queue    int      `json:"queue_len"`
		Workers  int      `json:"workers"`
		Cache    int      `json:"cache_entries"`
	}
	s.writeJSON(w, http.StatusOK, status{
		Counters: s.Counters(),
		Queue:    len(s.queue),
		Workers:  s.opts.Workers,
		Cache:    s.cache.len(),
	})
}

func (s *Server) writeError(w http.ResponseWriter, e *apiError) {
	if e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfter(s.opts.RetryAfter))
	}
	s.writeJSON(w, e.Status, errBody(e))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client hung up; nothing useful to do
}

func retryAfter(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
