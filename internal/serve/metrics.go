package serve

import (
	"bytes"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"softbrain/internal/obs"
	"softbrain/internal/sim"
)

// GET /metrics: the service's own telemetry in the Prometheus text
// exposition format, rendered with the shared obs.PromWriter so the
// families sdserve exposes live and sdobs -prom converts offline share
// one formatter — and one lint (obs.CheckExposition gates the endpoint
// in the smoke test).
//
// Three layers of state feed the endpoint: the atomic service counters
// (identical numbers to /statusz), point-in-time gauges (queue depth,
// busy workers, in-flight runs, cache entries), and cumulative per-run
// aggregates folded in as each run completes (cycles, retired bytes,
// scheduler counters, stall-cause attribution).

// latBounds are the request-latency bucket upper bounds, in seconds.
var latBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// latHist is one cumulative-style latency histogram (stored as
// per-bucket counts; rendered cumulatively).
type latHist struct {
	buckets [10]uint64 // len(latBounds) + overflow
	sum     float64
	count   uint64
}

func (h *latHist) observe(seconds float64) {
	i := 0
	for i < len(latBounds) && seconds > latBounds[i] {
		i++
	}
	h.buckets[i]++
	h.sum += seconds
	h.count++
}

// serverMetrics accumulates what the atomic counters cannot: per-path
// latency distributions and the per-run simulation aggregates.
type serverMetrics struct {
	mu      sync.Mutex
	latency map[string]*latHist

	runCycles  uint64 // simulated cycles across completed runs
	runRetired uint64 // bytes retired across completed runs
	runSched   sim.SchedStats
	stall      map[string]map[string]uint64 // component -> cause -> cycles
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		latency: make(map[string]*latHist),
		stall:   make(map[string]map[string]uint64),
	}
}

// observe records one served request's latency under its route pattern.
func (m *serverMetrics) observe(path string, d time.Duration) {
	m.mu.Lock()
	h := m.latency[path]
	if h == nil {
		h = &latHist{}
		m.latency[path] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// addRun folds one completed simulation into the cumulative aggregates.
func (m *serverMetrics) addRun(cycles, retiredBytes uint64, sched sim.SchedStats) {
	m.mu.Lock()
	m.runCycles += cycles
	m.runRetired += retiredBytes
	m.runSched.Add(sched)
	m.mu.Unlock()
}

// addStalls folds a completed run's stall-cause attribution (available
// when the run had metrics enabled) into the component×cause totals.
func (m *serverMetrics) addStalls(d obs.Dump) {
	m.mu.Lock()
	for _, u := range d.Units {
		for _, c := range u.Components {
			byCause := m.stall[c.Name]
			if byCause == nil {
				byCause = make(map[string]uint64)
				m.stall[c.Name] = byCause
			}
			for cause, n := range c.Causes {
				byCause[cause] += n
			}
		}
	}
	m.mu.Unlock()
}

// handleMetrics renders the exposition. The payload is built in memory
// first so a slow scraper never holds the metrics lock.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	s.writeMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) writeMetrics(buf *bytes.Buffer) {
	p := obs.NewPromWriter(buf)
	c := s.Counters()

	// Service counters: the same snapshot /statusz publishes.
	for _, cc := range []struct {
		name, help string
		v          uint64
	}{
		{"serve_accepted_total", "requests admitted into the worker queue", c.Accepted},
		{"serve_completed_total", "runs finished with a 200", c.Completed},
		{"serve_failed_total", "runs finished with a typed failure", c.Failed},
		{"serve_shed_total", "submissions shed with 429 (queue full)", c.Shed},
		{"serve_rejected_total", "submissions rejected with 503 (draining)", c.Rejected},
		{"serve_cache_hits_total", "submissions served from the result cache", c.CacheHits},
		{"serve_deduped_total", "submissions that joined an identical in-flight run", c.Deduped},
		{"serve_canceled_total", "flights canceled before completing", c.Canceled},
		{"serve_panics_total", "panics contained by worker isolation", c.Panics},
	} {
		p.Type(cc.name, "counter", cc.help)
		p.Sample(cc.name, nil, float64(cc.v))
	}

	// Point-in-time gauges.
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"serve_queue_depth", "submissions waiting in the admission queue", float64(len(s.queue))},
		{"serve_queue_capacity", "admission queue bound", float64(s.opts.QueueDepth)},
		{"serve_workers", "simulation worker pool size", float64(s.opts.Workers)},
		{"serve_workers_busy", "workers currently executing a run", float64(s.workersBusy.Load())},
		{"serve_inflight_runs", "runs queued or executing right now", float64(s.inflightRuns())},
		{"serve_cache_entries", "entries in the result cache", float64(s.cache.len())},
	} {
		p.Type(g.name, "gauge", g.help)
		p.Sample(g.name, nil, g.v)
	}

	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()

	// Per-route request latency.
	if len(s.metrics.latency) > 0 {
		paths := make([]string, 0, len(s.metrics.latency))
		for path := range s.metrics.latency {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		p.Type("serve_request_duration_seconds", "histogram", "request latency per route")
		for _, path := range paths {
			h := s.metrics.latency[path]
			var cum uint64
			for i, n := range h.buckets {
				cum += n
				le := "+Inf"
				if i < len(latBounds) {
					le = strconv.FormatFloat(latBounds[i], 'g', -1, 64)
				}
				p.Sample("serve_request_duration_seconds_bucket",
					[]obs.Label{{Name: "path", Value: path}, {Name: "le", Value: le}}, float64(cum))
			}
			p.Sample("serve_request_duration_seconds_sum", []obs.Label{{Name: "path", Value: path}}, h.sum)
			p.Sample("serve_request_duration_seconds_count", []obs.Label{{Name: "path", Value: path}}, float64(h.count))
		}
	}

	// Cumulative per-run simulation aggregates.
	p.Type("serve_run_cycles_total", "counter", "simulated cycles across completed runs")
	p.Sample("serve_run_cycles_total", nil, float64(s.metrics.runCycles))
	p.Type("serve_run_retired_bytes_total", "counter", "stream bytes retired across completed runs")
	p.Sample("serve_run_retired_bytes_total", nil, float64(s.metrics.runRetired))

	sched := s.metrics.runSched
	for _, sc := range []struct {
		name, help string
		v          uint64
	}{
		{"serve_sched_cycles_total", "scheduler cycles stepped (not jumped)", sched.Cycles},
		{"serve_sched_comp_ticks_total", "component ticks executed", sched.CompTicks},
		{"serve_sched_comp_sleeps_total", "component-cycles slept during stepped cycles", sched.CompSleeps},
		{"serve_sched_sig_wakes_total", "wakes caused by watch-signature changes", sched.SigWakes},
		{"serve_sched_jumps_total", "machine-level frozen jumps taken", sched.Jumps},
		{"serve_sched_skipped_cycles_total", "cycles elided by frozen jumps", sched.Skipped},
		{"serve_sched_spans_total", "multi-cycle spans retired in one call", sched.Spans},
		{"serve_sched_span_cycles_total", "cycles covered by retired spans", sched.SpanCycles},
	} {
		p.Type(sc.name, "counter", sc.help)
		p.Sample(sc.name, nil, float64(sc.v))
	}

	// Stall-cause attribution from runs that had metrics enabled.
	if len(s.metrics.stall) > 0 {
		comps := make([]string, 0, len(s.metrics.stall))
		for comp := range s.metrics.stall {
			comps = append(comps, comp)
		}
		sort.Strings(comps)
		p.Type("serve_run_stall_cycles_total", "counter", "stall-cause attribution across metrics-enabled runs")
		for _, comp := range comps {
			byCause := s.metrics.stall[comp]
			causes := make([]string, 0, len(byCause))
			for cause := range byCause {
				causes = append(causes, cause)
			}
			sort.Strings(causes)
			for _, cause := range causes {
				p.Sample("serve_run_stall_cycles_total",
					[]obs.Label{{Name: "component", Value: comp}, {Name: "cause", Value: cause}},
					float64(byCause[cause]))
			}
		}
	}
}
