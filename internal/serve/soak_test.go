package serve

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// TestSoak is the progen-issue soak: concurrent clients hammer the
// service with a mixed workload census, a chaos slice abandons its
// requests mid-run, and the acceptance bars are absolute — zero panics
// escape a request, nothing hangs, shed requests got a typed 429/503
// (they are *counted*, not lost), cache hits happen, and the server
// drains to zero goroutines afterwards.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	s := New(Options{Workers: 4, QueueDepth: 4, DrainGrace: 30 * time.Second})
	hs := httptest.NewServer(s)

	cfg := LoadConfig{
		Clients:  8,
		Requests: 120,
		Workloads: []string{
			"gemm", "fft", "spmv-crs", "stencil2d", "gemm", "lut", "bfs", "gemm",
		},
		Seed:        1,
		CancelEvery: 9, // every 9th request is abandoned mid-flight
		CancelAfter: 2 * time.Millisecond,
		StreamEvery: 4, // every 4th request takes the SSE streaming path
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := RunLoad(ctx, hs.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d sent, %d ok (%d cached, %d deduped), %d shed, %d canceled, %d failed, %d retries, %.1f sims/sec, p99 %v",
		res.Sent, res.OK, res.CacheHits, res.Deduped, res.Shed, res.Canceled, res.Failed, res.Retries, res.SimsPerSec, res.P99)
	t.Logf("soak stream: %d ok, %d progress frames, p99 %v", res.StreamOK, res.StreamProgress, res.StreamP99)

	if got := res.OK + res.Shed + res.Canceled + res.Failed; got != res.Sent {
		t.Errorf("outcome census %d != sent %d: every request must be accounted for", got, res.Sent)
	}
	if res.Failed != 0 {
		t.Errorf("%d deterministic failures from a census of valid workloads", res.Failed)
	}
	if res.OK == 0 {
		t.Error("no request succeeded")
	}
	if res.CacheHits == 0 {
		t.Error("no cache hit across repeated identical submissions")
	}
	if res.StreamOK == 0 {
		t.Error("no streamed request reached a terminal result")
	}

	c := s.Counters()
	if c.Panics != 0 {
		t.Errorf("%d panics escaped into requests", c.Panics)
	}

	// Graceful drain, then the goroutine census must return to the
	// pre-server baseline: no leaked workers, flights, or timers.
	s.Drain()
	hs.Close()
	hs.Client().CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after drain: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
