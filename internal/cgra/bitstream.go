package cgra

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"softbrain/internal/dfg"
)

// The configuration bitstream is what SD_Config loads from memory: it
// fully describes a compiled DFG — functional-unit opcodes and
// immediates, circuit-switched routes, delay-FIFO settings, timing and
// the vector-port mapping. EncodeConfig and DecodeConfig round-trip a
// Schedule (including the graph itself), so the machine executes what
// was actually loaded, not a looked-up Go object.
//
// Layout (little-endian): a header with magic/counts, the port tables,
// the node table and the connection tables. Strings are length-prefixed.

const configMagic = 0x53_44_43_46 // "SDCF"

type bitWriter struct{ b bytes.Buffer }

func (w *bitWriter) u32(v uint32) { _ = binary.Write(&w.b, binary.LittleEndian, v) }
func (w *bitWriter) u64(v uint64) { _ = binary.Write(&w.b, binary.LittleEndian, v) }
func (w *bitWriter) i32(v int)    { w.u32(uint32(int32(v))) }
func (w *bitWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.b.WriteString(s)
}

type bitReader struct{ r *bytes.Reader }

func (r *bitReader) u32() (uint32, error) {
	var v uint32
	err := binary.Read(r.r, binary.LittleEndian, &v)
	return v, err
}
func (r *bitReader) u64() (uint64, error) {
	var v uint64
	err := binary.Read(r.r, binary.LittleEndian, &v)
	return v, err
}
func (r *bitReader) i32() (int, error) {
	v, err := r.u32()
	return int(int32(v)), err
}
func (r *bitReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > 4096 {
		return "", fmt.Errorf("cgra: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeRef(w *bitWriter, r dfg.Ref) {
	w.u32(uint32(r.Kind))
	w.i32(r.Port)
	w.i32(r.Word)
	w.i32(int(r.Node))
	w.u64(r.Imm)
}

func readRef(r *bitReader) (dfg.Ref, error) {
	var out dfg.Ref
	k, err := r.u32()
	if err != nil {
		return out, err
	}
	out.Kind = dfg.RefKind(k)
	if out.Port, err = r.i32(); err != nil {
		return out, err
	}
	if out.Word, err = r.i32(); err != nil {
		return out, err
	}
	n, err := r.i32()
	if err != nil {
		return out, err
	}
	out.Node = dfg.NodeID(n)
	out.Imm, err = r.u64()
	return out, err
}

func writeConn(w *bitWriter, c Conn) {
	w.u32(boolBit(c.Val.FromPort))
	w.i32(c.Val.Port)
	w.i32(c.Val.Word)
	w.i32(int(c.Val.Node))
	w.i32(c.Delay)
	w.u32(uint32(len(c.Path)))
	for _, pe := range c.Path {
		w.i32(pe)
	}
}

func readConn(r *bitReader) (Conn, error) {
	var c Conn
	fp, err := r.u32()
	if err != nil {
		return c, err
	}
	c.Val.FromPort = fp != 0
	if c.Val.Port, err = r.i32(); err != nil {
		return c, err
	}
	if c.Val.Word, err = r.i32(); err != nil {
		return c, err
	}
	n, err := r.i32()
	if err != nil {
		return c, err
	}
	c.Val.Node = dfg.NodeID(n)
	if c.Delay, err = r.i32(); err != nil {
		return c, err
	}
	pl, err := r.u32()
	if err != nil {
		return c, err
	}
	if pl > 4096 {
		return c, fmt.Errorf("cgra: unreasonable path length %d", pl)
	}
	if pl > 0 {
		c.Path = make([]int, pl)
		for i := range c.Path {
			if c.Path[i], err = r.i32(); err != nil {
				return c, err
			}
		}
	}
	return c, nil
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// EncodeConfig serializes the schedule (with its graph) into the
// configuration bitstream.
func EncodeConfig(s *Schedule) []byte {
	g := s.Graph
	w := &bitWriter{}
	w.u32(configMagic)
	w.str(g.Name)

	w.u32(uint32(len(g.Ins)))
	for i, p := range g.Ins {
		w.str(p.Name)
		w.i32(p.Width)
		w.i32(s.InPortMap[i])
	}
	w.u32(uint32(len(g.Outs)))
	for i, p := range g.Outs {
		w.str(p.Name)
		w.i32(p.ElemBytes)
		w.i32(s.OutPortMap[i])
		w.i32(s.OutArrive[i])
		w.u32(uint32(len(p.Sources)))
		for _, src := range p.Sources {
			writeRef(w, src)
		}
		for _, c := range s.OutConn[i] {
			writeConn(w, c)
		}
	}
	w.u32(uint32(len(g.Nodes)))
	for _, n := range g.Nodes {
		w.u32(uint32(n.Op.Base))
		w.u32(uint32(n.Op.Width))
		w.i32(s.Place[n.ID])
		w.i32(s.NodeFire[n.ID])
		w.u32(uint32(len(n.Args)))
		for _, a := range n.Args {
			writeRef(w, a)
		}
		for _, c := range s.Operand[n.ID] {
			writeConn(w, c)
		}
	}
	w.i32(s.Depth)
	return w.b.Bytes()
}

// DecodeConfig reconstructs a Schedule (and its graph) from the
// bitstream, validating it against the fabric it will configure.
func DecodeConfig(f *Fabric, data []byte) (*Schedule, error) {
	r := &bitReader{r: bytes.NewReader(data)}
	magic, err := r.u32()
	if err != nil || magic != configMagic {
		return nil, fmt.Errorf("cgra: bad configuration magic %#x", magic)
	}
	g := &dfg.Graph{}
	s := &Schedule{Fabric: f, Graph: g}
	if g.Name, err = r.str(); err != nil {
		return nil, err
	}

	nIn, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nIn; i++ {
		var p dfg.InPort
		if p.Name, err = r.str(); err != nil {
			return nil, err
		}
		if p.Width, err = r.i32(); err != nil {
			return nil, err
		}
		hw, err := r.i32()
		if err != nil {
			return nil, err
		}
		g.Ins = append(g.Ins, p)
		s.InPortMap = append(s.InPortMap, hw)
	}

	nOut, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nOut; i++ {
		var p dfg.OutPort
		if p.Name, err = r.str(); err != nil {
			return nil, err
		}
		if p.ElemBytes, err = r.i32(); err != nil {
			return nil, err
		}
		hw, err := r.i32()
		if err != nil {
			return nil, err
		}
		arrive, err := r.i32()
		if err != nil {
			return nil, err
		}
		width, err := r.u32()
		if err != nil {
			return nil, err
		}
		if width > 8 {
			return nil, fmt.Errorf("cgra: output width %d", width)
		}
		var conns []Conn
		for w := uint32(0); w < width; w++ {
			src, err := readRef(r)
			if err != nil {
				return nil, err
			}
			p.Sources = append(p.Sources, src)
		}
		for w := uint32(0); w < width; w++ {
			c, err := readConn(r)
			if err != nil {
				return nil, err
			}
			conns = append(conns, c)
		}
		g.Outs = append(g.Outs, p)
		s.OutPortMap = append(s.OutPortMap, hw)
		s.OutArrive = append(s.OutArrive, arrive)
		s.OutConn = append(s.OutConn, conns)
	}

	nNodes, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nNodes > uint32(f.NumPEs()) {
		return nil, fmt.Errorf("cgra: %d nodes for %d PEs", nNodes, f.NumPEs())
	}
	for id := uint32(0); id < nNodes; id++ {
		base, err := r.u32()
		if err != nil {
			return nil, err
		}
		width, err := r.u32()
		if err != nil {
			return nil, err
		}
		pe, err := r.i32()
		if err != nil {
			return nil, err
		}
		fire, err := r.i32()
		if err != nil {
			return nil, err
		}
		arity, err := r.u32()
		if err != nil {
			return nil, err
		}
		if arity > 3 {
			return nil, fmt.Errorf("cgra: node arity %d", arity)
		}
		n := dfg.Node{ID: dfg.NodeID(id), Op: dfg.Op{Base: dfg.BaseOp(base), Width: uint8(width)}}
		var conns []Conn
		for a := uint32(0); a < arity; a++ {
			ref, err := readRef(r)
			if err != nil {
				return nil, err
			}
			n.Args = append(n.Args, ref)
		}
		for a := uint32(0); a < arity; a++ {
			c, err := readConn(r)
			if err != nil {
				return nil, err
			}
			conns = append(conns, c)
		}
		g.Nodes = append(g.Nodes, n)
		s.Place = append(s.Place, pe)
		s.NodeFire = append(s.NodeFire, fire)
		s.Operand = append(s.Operand, conns)
	}
	if s.Depth, err = r.i32(); err != nil {
		return nil, err
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("cgra: decoded graph invalid: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("cgra: decoded schedule invalid: %w", err)
	}
	return s, nil
}
