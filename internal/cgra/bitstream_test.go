package cgra

import (
	"reflect"
	"testing"

	"softbrain/internal/dfg"
)

// handSchedule builds a tiny valid schedule by hand for encoding tests
// (the sched package owns the real compiler; its tests cover generated
// schedules end to end).
func handSchedule(t *testing.T) *Schedule {
	t.Helper()
	b := dfg.NewBuilder("tiny")
	a := b.Input("A", 1)
	bb := b.Input("B", 1)
	sum := b.N(dfg.Add(64), a.W(0), bb.W(0))
	b.Output("O", sum)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	f := NewFabric(2, 2, dfg.FUAlu)
	s := &Schedule{
		Fabric:   f,
		Graph:    g,
		Place:    []int{1},
		NodeFire: []int{2},
		Operand: [][]Conn{{
			{Val: PortVal(0, 0), Path: []int{1}, Delay: 0},
			{Val: PortVal(1, 0), Path: []int{0, 1}, Delay: 0},
		}},
		OutConn:    [][]Conn{{{Val: NodeVal(0), Path: []int{1, 3}, Delay: 0}}},
		OutArrive:  []int{5},
		Depth:      5,
		InPortMap:  []int{0, 1},
		OutPortMap: []int{0},
	}
	// Fix delay matching: A arrives at 0+1+0=1, B at 0+2+0=2; fire at 2
	// needs A delayed by 1.
	s.Operand[0][0].Delay = 1
	if err := s.Validate(); err != nil {
		t.Fatalf("hand schedule invalid: %v", err)
	}
	return s
}

func TestBitstreamRoundTrip(t *testing.T) {
	s := handSchedule(t)
	blob := EncodeConfig(s)
	if len(blob) == 0 {
		t.Fatal("empty bitstream")
	}
	got, err := DecodeConfig(s.Fabric, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.Name != "tiny" || len(got.Graph.Nodes) != 1 {
		t.Errorf("graph lost: %+v", got.Graph)
	}
	if !reflect.DeepEqual(got.Place, s.Place) ||
		!reflect.DeepEqual(got.NodeFire, s.NodeFire) ||
		!reflect.DeepEqual(got.OutArrive, s.OutArrive) ||
		got.Depth != s.Depth {
		t.Error("schedule fields lost in round trip")
	}
	if !reflect.DeepEqual(got.Operand, s.Operand) || !reflect.DeepEqual(got.OutConn, s.OutConn) {
		t.Error("routing lost in round trip")
	}
	if !reflect.DeepEqual(got.InPortMap, s.InPortMap) || !reflect.DeepEqual(got.OutPortMap, s.OutPortMap) {
		t.Error("port maps lost in round trip")
	}
	// The decoded schedule itself validates.
	if err := got.Validate(); err != nil {
		t.Errorf("decoded schedule invalid: %v", err)
	}
}

func TestBitstreamRejectsGarbage(t *testing.T) {
	f := NewFabric(2, 2, dfg.FUAlu)
	if _, err := DecodeConfig(f, nil); err == nil {
		t.Error("empty blob accepted")
	}
	if _, err := DecodeConfig(f, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncations at every prefix must error, never panic.
	blob := EncodeConfig(handSchedule(t))
	for n := 0; n < len(blob); n += 7 {
		if _, err := DecodeConfig(f, blob[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	// Corrupted bytes must error or decode to a validating schedule,
	// never panic.
	for i := 4; i < len(blob); i += 11 {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xff
		if s, err := DecodeConfig(f, mut); err == nil {
			if err := s.Validate(); err != nil {
				t.Errorf("corruption at byte %d decoded to invalid schedule", i)
			}
		}
	}
}
