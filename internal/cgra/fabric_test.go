package cgra

import (
	"testing"

	"softbrain/internal/dfg"
)

func TestGeometry(t *testing.T) {
	f := NewFabric(5, 4, dfg.FUAlu)
	if f.NumPEs() != 20 {
		t.Errorf("NumPEs = %d", f.NumPEs())
	}
	if f.At(2, 3) != 11 {
		t.Errorf("At(2,3) = %d", f.At(2, 3))
	}
	r, c := f.Pos(11)
	if r != 2 || c != 3 {
		t.Errorf("Pos(11) = %d,%d", r, c)
	}
	if f.NumLinks() != 2*(5*3+4*4)*f.LinkChannels {
		t.Errorf("NumLinks = %d", f.NumLinks())
	}
}

func TestNeighbors(t *testing.T) {
	f := NewFabric(3, 3, dfg.FUAlu)
	corner := f.Neighbors(f.At(0, 0))
	if len(corner) != 2 {
		t.Errorf("corner has %d neighbors", len(corner))
	}
	center := f.Neighbors(f.At(1, 1))
	if len(center) != 4 {
		t.Errorf("center has %d neighbors", len(center))
	}
	for _, nb := range center {
		found := false
		for _, back := range f.Neighbors(nb) {
			if back == f.At(1, 1) {
				found = true
			}
		}
		if !found {
			t.Errorf("neighbor relation not symmetric for %d", nb)
		}
	}
}

func TestClassMaskAndSupports(t *testing.T) {
	pe := PE{Classes: ClassMask(dfg.FUAlu, dfg.FUSig)}
	if !pe.Supports(dfg.FUAlu) || !pe.Supports(dfg.FUSig) {
		t.Error("mask missing set classes")
	}
	if pe.Supports(dfg.FUMul) || pe.Supports(dfg.FUDiv) {
		t.Error("mask has extra classes")
	}
}

func TestFabricValidate(t *testing.T) {
	good := NewFabric(5, 4, dfg.FUAlu, dfg.FUMul)
	if err := good.Validate(); err != nil {
		t.Fatalf("default fabric invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Fabric)
	}{
		{"zero rows", func(f *Fabric) { f.Rows = 0 }},
		{"pe count mismatch", func(f *Fabric) { f.PEs = f.PEs[:3] }},
		{"negative delay", func(f *Fabric) { f.MaxDelay = -1 }},
		{"no inject channels", func(f *Fabric) { f.InjectPerPE = 0 }},
		{"no in ports", func(f *Fabric) { f.InPorts = nil }},
		{"no out ports", func(f *Fabric) { f.OutPorts = nil }},
		{"bad port width", func(f *Fabric) { f.InPorts[0].Width = 9 }},
		{"depth below width", func(f *Fabric) { f.OutPorts[0].Depth = 1 }},
	}
	for _, tt := range cases {
		f := NewFabric(5, 4, dfg.FUAlu)
		tt.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

func TestProvisionedFabrics(t *testing.T) {
	dnn := DNNFabric()
	if err := dnn.Validate(); err != nil {
		t.Fatalf("DNN fabric invalid: %v", err)
	}
	counts := dnn.FUCounts()
	if counts[dfg.FUMul] != 20 {
		t.Errorf("DNN fabric has %d multiplier PEs, want 20", counts[dfg.FUMul])
	}
	if counts[dfg.FUSig] != 4 {
		t.Errorf("DNN fabric has %d sigmoid PEs, want 4", counts[dfg.FUSig])
	}
	broad := BroadFabric()
	if err := broad.Validate(); err != nil {
		t.Fatalf("broad fabric invalid: %v", err)
	}
	bc := broad.FUCounts()
	if bc[dfg.FUDiv] == 0 || bc[dfg.FUSig] == 0 || bc[dfg.FUAlu] != 20 {
		t.Errorf("broad fabric FU mix wrong: %v", bc)
	}
	// Indirect ports exist and are flagged.
	indirect := 0
	for _, p := range dnn.InPorts {
		if p.Indirect {
			indirect++
		}
	}
	if indirect != 2 {
		t.Errorf("%d indirect ports, want 2", indirect)
	}
}
