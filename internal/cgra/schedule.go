package cgra

import (
	"fmt"

	"softbrain/internal/dfg"
)

// ValueID names a value flowing through the mesh: either one word of a
// DFG input port or the result of a DFG node. Links are circuit-switched,
// so a link may carry exactly one ValueID (fanout of the same value may
// share links).
type ValueID struct {
	FromPort bool
	Port     int // DFG input port index (FromPort)
	Word     int // word lane within the port (FromPort)
	Node     dfg.NodeID
}

// PortVal names word w of DFG input port p.
func PortVal(p, w int) ValueID { return ValueID{FromPort: true, Port: p, Word: w} }

// NodeVal names the result of node n.
func NodeVal(n dfg.NodeID) ValueID { return ValueID{Node: n} }

func (v ValueID) String() string {
	if v.FromPort {
		return fmt.Sprintf("in%d.%d", v.Port, v.Word)
	}
	return fmt.Sprintf("n%d", v.Node)
}

// Conn is one routed connection: the path a value takes through the mesh
// to one consumer, plus the delay-FIFO setting that aligns its arrival.
// Path lists PE indices from the entry PE (the injection tap for port
// values, the producer's PE for node values) to the consumer's PE (or
// the ejection tap for output-port connections).
type Conn struct {
	Val   ValueID
	Path  []int
	Delay int
}

// Latency is the cycles the connection adds after the value departs:
// one cycle to enter the mesh (injection or FU output register), one per
// link, plus the delay-FIFO setting.
func (c Conn) Latency() int { return 1 + (len(c.Path) - 1) + c.Delay }

// Schedule is a complete CGRA configuration for one DFG: placement,
// routing, delay matching, timing, and the vector-port mapping. It is
// what SD_Config loads; ConfigBytes is its encoded size.
type Schedule struct {
	Fabric *Fabric
	Graph  *dfg.Graph

	Place    []int    // node -> PE index
	NodeFire []int    // node -> firing cycle relative to instance launch
	Operand  [][]Conn // [node][arg]; immediate args have a zero-value Conn (nil Path)

	OutConn   [][]Conn // [output port][word]
	OutArrive []int    // per output port: arrival cycle of its words
	Depth     int      // pipeline depth: max over OutArrive

	InPortMap  []int // DFG input port -> hardware input port
	OutPortMap []int // DFG output port -> hardware output port
}

// injectKey identifies one injection channel use: a value entering the
// mesh at a top-row PE.
type injectKey struct {
	pe  int
	val ValueID
}

// depart is the cycle the value leaves its source, relative to instance
// launch: port words depart at 0 (synchronized dataflow firing), node
// results after the node fires and its FU latency elapses.
func (s *Schedule) depart(v ValueID) int {
	if v.FromPort {
		return 0
	}
	return s.NodeFire[v.Node] + s.Graph.Nodes[v.Node].Op.Latency()
}

// Validate checks every hardware constraint the schedule must satisfy:
// capacity, FU capability, link exclusivity, channel limits, delay-FIFO
// bounds, and exact delay matching. A Schedule that validates runs on
// the (modeled) hardware.
func (s *Schedule) Validate() error {
	f, g := s.Fabric, s.Graph
	if f == nil || g == nil {
		return fmt.Errorf("cgra: schedule missing fabric or graph")
	}
	if len(s.Place) != len(g.Nodes) || len(s.NodeFire) != len(g.Nodes) || len(s.Operand) != len(g.Nodes) {
		return fmt.Errorf("cgra: schedule shape mismatch")
	}

	// Placement: one node per PE, class supported.
	occupied := make(map[int]dfg.NodeID)
	for _, n := range g.Nodes {
		pe := s.Place[n.ID]
		if pe < 0 || pe >= f.NumPEs() {
			return fmt.Errorf("cgra: node %d placed on PE %d of %d", n.ID, pe, f.NumPEs())
		}
		if prev, taken := occupied[pe]; taken {
			return fmt.Errorf("cgra: nodes %d and %d share PE %d", prev, n.ID, pe)
		}
		occupied[pe] = n.ID
		if !f.PEs[pe].Supports(n.Op.Class()) {
			return fmt.Errorf("cgra: PE %d cannot execute %v (node %d)", pe, n.Op, n.ID)
		}
	}

	// Routing: adjacency, link channel capacity, edge channel limits.
	linkUse := make(map[[2]int]map[ValueID]bool)
	injectUse := make(map[int]int)
	injectSeen := make(map[injectKey]bool)
	ejectUse := make(map[int]int)
	checkPath := func(c Conn, endPE int, eject bool) error {
		if len(c.Path) == 0 {
			return fmt.Errorf("cgra: empty path for %v", c.Val)
		}
		start := c.Path[0]
		if c.Val.FromPort {
			// Fanout of one value shares its single injection channel.
			if k := (injectKey{start, c.Val}); !injectSeen[k] {
				injectSeen[k] = true
				injectUse[start]++
			}
		} else if start != s.Place[c.Val.Node] {
			return fmt.Errorf("cgra: %v departs from PE %d but is placed on %d", c.Val, start, s.Place[c.Val.Node])
		}
		last := c.Path[len(c.Path)-1]
		if last != endPE {
			return fmt.Errorf("cgra: path for %v ends at PE %d, want %d", c.Val, last, endPE)
		}
		if eject {
			ejectUse[last]++
		}
		for i := 1; i < len(c.Path); i++ {
			a, b := c.Path[i-1], c.Path[i]
			adjacent := false
			for _, nb := range f.Neighbors(a) {
				if nb == b {
					adjacent = true
					break
				}
			}
			if !adjacent {
				return fmt.Errorf("cgra: path for %v hops %d->%d, not mesh neighbors", c.Val, a, b)
			}
			key := [2]int{a, b}
			if linkUse[key] == nil {
				linkUse[key] = map[ValueID]bool{}
			}
			linkUse[key][c.Val] = true
			if len(linkUse[key]) > f.LinkChannels {
				return fmt.Errorf("cgra: link %d->%d carries %d values, capacity %d",
					a, b, len(linkUse[key]), f.LinkChannels)
			}
		}
		if c.Delay < 0 || c.Delay > f.MaxDelay {
			return fmt.Errorf("cgra: delay %d for %v exceeds FIFO depth %d", c.Delay, c.Val, f.MaxDelay)
		}
		return nil
	}

	// Operand connections and delay matching at each node.
	for _, n := range g.Nodes {
		if len(s.Operand[n.ID]) != len(n.Args) {
			return fmt.Errorf("cgra: node %d has %d routed operands for %d args", n.ID, len(s.Operand[n.ID]), len(n.Args))
		}
		for i, a := range n.Args {
			c := s.Operand[n.ID][i]
			if a.Kind == dfg.RefImm {
				if c.Path != nil {
					return fmt.Errorf("cgra: node %d arg %d is immediate but routed", n.ID, i)
				}
				continue
			}
			want := PortVal(a.Port, a.Word)
			if a.Kind == dfg.RefNode {
				want = NodeVal(a.Node)
			}
			if c.Val != want {
				return fmt.Errorf("cgra: node %d arg %d routes %v, want %v", n.ID, i, c.Val, want)
			}
			if err := checkPath(c, s.Place[n.ID], false); err != nil {
				return err
			}
			if got := s.depart(c.Val) + c.Latency(); got != s.NodeFire[n.ID] {
				return fmt.Errorf("cgra: node %d arg %d arrives at %d, fires at %d (delay mismatch)",
					n.ID, i, got, s.NodeFire[n.ID])
			}
		}
	}

	// Output connections: each word matched to its port's arrival cycle.
	if len(s.OutConn) != len(g.Outs) || len(s.OutArrive) != len(g.Outs) {
		return fmt.Errorf("cgra: schedule covers %d output ports of %d", len(s.OutConn), len(g.Outs))
	}
	depth := 0
	for p := range g.Outs {
		if len(s.OutConn[p]) != g.Outs[p].Width() {
			return fmt.Errorf("cgra: output %s has %d routed words of %d", g.Outs[p].Name, len(s.OutConn[p]), g.Outs[p].Width())
		}
		for w, c := range s.OutConn[p] {
			src := g.Outs[p].Sources[w]
			var want ValueID
			switch src.Kind {
			case dfg.RefNode:
				want = NodeVal(src.Node)
			case dfg.RefPort:
				want = PortVal(src.Port, src.Word)
			default:
				return fmt.Errorf("cgra: output %s word %d sources an immediate", g.Outs[p].Name, w)
			}
			if c.Val != want {
				return fmt.Errorf("cgra: output %s word %d routes %v, want %v", g.Outs[p].Name, w, c.Val, want)
			}
			if err := checkPath(c, c.Path[len(c.Path)-1], true); err != nil {
				return err
			}
			if got := s.depart(c.Val) + c.Latency(); got != s.OutArrive[p] {
				return fmt.Errorf("cgra: output %s word %d arrives at %d, port expects %d", g.Outs[p].Name, w, got, s.OutArrive[p])
			}
		}
		if s.OutArrive[p] > depth {
			depth = s.OutArrive[p]
		}
	}
	if s.Depth != depth {
		return fmt.Errorf("cgra: Depth = %d, computed %d", s.Depth, depth)
	}

	// Channel capacity at the fabric edges.
	for pe, n := range injectUse {
		if n > f.InjectPerPE {
			return fmt.Errorf("cgra: PE %d has %d injections, limit %d", pe, n, f.InjectPerPE)
		}
	}
	for pe, n := range ejectUse {
		if n > f.EjectPerPE {
			return fmt.Errorf("cgra: PE %d has %d ejections, limit %d", pe, n, f.EjectPerPE)
		}
	}

	// Vector-port mapping: injective, wide enough, and not indirect.
	return s.validatePortMaps()
}

func (s *Schedule) validatePortMaps() error {
	f, g := s.Fabric, s.Graph
	if len(s.InPortMap) != len(g.Ins) || len(s.OutPortMap) != len(g.Outs) {
		return fmt.Errorf("cgra: port maps cover %d/%d ports of %d/%d",
			len(s.InPortMap), len(s.OutPortMap), len(g.Ins), len(g.Outs))
	}
	used := map[int]bool{}
	for p, hw := range s.InPortMap {
		if hw < 0 || hw >= len(f.InPorts) {
			return fmt.Errorf("cgra: DFG port %s maps to input port %d of %d", g.Ins[p].Name, hw, len(f.InPorts))
		}
		if used[hw] {
			return fmt.Errorf("cgra: hardware input port %d mapped twice", hw)
		}
		used[hw] = true
		if f.InPorts[hw].Indirect {
			return fmt.Errorf("cgra: DFG port %s mapped to indirect port %d", g.Ins[p].Name, hw)
		}
		if f.InPorts[hw].Width < g.Ins[p].Width {
			return fmt.Errorf("cgra: DFG port %s (width %d) mapped to narrower port %d (width %d)",
				g.Ins[p].Name, g.Ins[p].Width, hw, f.InPorts[hw].Width)
		}
	}
	usedOut := map[int]bool{}
	for p, hw := range s.OutPortMap {
		if hw < 0 || hw >= len(f.OutPorts) {
			return fmt.Errorf("cgra: DFG port %s maps to output port %d of %d", g.Outs[p].Name, hw, len(f.OutPorts))
		}
		if usedOut[hw] {
			return fmt.Errorf("cgra: hardware output port %d mapped twice", hw)
		}
		usedOut[hw] = true
		if f.OutPorts[hw].Width < g.Outs[p].Width() {
			return fmt.Errorf("cgra: DFG port %s (width %d) mapped to narrower port %d (width %d)",
				g.Outs[p].Name, g.Outs[p].Width(), hw, f.OutPorts[hw].Width)
		}
	}
	return nil
}

// ConfigBytes is the size of the configuration bitstream SD_Config
// loads — the actual encoding of EncodeConfig.
func (s *Schedule) ConfigBytes() uint64 {
	return uint64(len(EncodeConfig(s)))
}
