// Package cgra models the coarse-grained reconfigurable architecture of
// Section 4.4: a circuit-switched mesh of processing elements (PEs), each
// with pipelined functional units, small constant/accumulator storage and
// per-operand delay FIFOs. The mesh has no flow control; correctness
// relies on the compiler delay-matching every path, which the Schedule
// type captures and validates.
package cgra

import (
	"fmt"

	"softbrain/internal/dfg"
)

// PE describes one processing element's capabilities.
type PE struct {
	Classes uint8 // bitmask over dfg.FUClass: which op classes its FU executes
}

// Supports reports whether the PE's FU can execute ops of class c.
func (p PE) Supports(c dfg.FUClass) bool { return p.Classes&(1<<c) != 0 }

// ClassMask builds a PE capability mask from FU classes.
func ClassMask(classes ...dfg.FUClass) uint8 {
	var m uint8
	for _, c := range classes {
		m |= 1 << c
	}
	return m
}

// PortSpec describes one hardware vector port.
type PortSpec struct {
	Width    int  // words transferable per cycle (1..8)
	Depth    int  // FIFO capacity in words
	Indirect bool // not connected to the CGRA; buffers indirect addresses
}

// Fabric is the static hardware description: the PE grid, its mesh
// topology, the delay-FIFO depth, and the vector ports. Vector ports
// attach to a spread of CGRA ports around the fabric (Section 4.4), so a
// stream value may inject at (and eject from) any PE, bounded by the
// per-PE channel counts below.
type Fabric struct {
	Rows, Cols   int
	PEs          []PE // row-major: index r*Cols+c
	MaxDelay     int  // per-operand delay FIFO depth in cycles
	InjectPerPE  int  // port words/cycle one PE can accept
	EjectPerPE   int  // port words/cycle one PE can deliver
	LinkChannels int  // 64-bit channels per directed mesh link
	InPorts      []PortSpec
	OutPorts     []PortSpec
}

// NumPEs returns the PE count.
func (f *Fabric) NumPEs() int { return f.Rows * f.Cols }

// At returns the PE index at row r, column c.
func (f *Fabric) At(r, c int) int { return r*f.Cols + c }

// Pos returns the row and column of PE index i.
func (f *Fabric) Pos(i int) (r, c int) { return i / f.Cols, i % f.Cols }

// Neighbors returns the PE indices adjacent to i in the mesh.
func (f *Fabric) Neighbors(i int) []int {
	r, c := f.Pos(i)
	out := make([]int, 0, 4)
	if r > 0 {
		out = append(out, f.At(r-1, c))
	}
	if r < f.Rows-1 {
		out = append(out, f.At(r+1, c))
	}
	if c > 0 {
		out = append(out, f.At(r, c-1))
	}
	if c < f.Cols-1 {
		out = append(out, f.At(r, c+1))
	}
	return out
}

// Validate checks the fabric description.
func (f *Fabric) Validate() error {
	if f.Rows < 1 || f.Cols < 1 {
		return fmt.Errorf("cgra: empty fabric %dx%d", f.Rows, f.Cols)
	}
	if len(f.PEs) != f.NumPEs() {
		return fmt.Errorf("cgra: %d PEs for a %dx%d fabric", len(f.PEs), f.Rows, f.Cols)
	}
	if f.MaxDelay < 0 || f.InjectPerPE < 1 || f.EjectPerPE < 1 || f.LinkChannels < 1 {
		return fmt.Errorf("cgra: invalid delay/channel parameters")
	}
	if len(f.InPorts) == 0 || len(f.OutPorts) == 0 {
		return fmt.Errorf("cgra: fabric needs input and output vector ports")
	}
	for i, p := range append(append([]PortSpec{}, f.InPorts...), f.OutPorts...) {
		if p.Width < 1 || p.Width > 8 || p.Depth < p.Width {
			return fmt.Errorf("cgra: port %d has invalid width %d / depth %d", i, p.Width, p.Depth)
		}
	}
	return nil
}

// FUCounts tallies how many PEs support each FU class (a PE with several
// classes counts toward each; the power model uses dynamic activity, not
// these static counts).
func (f *Fabric) FUCounts() [dfg.NumFUClasses]int {
	var out [dfg.NumFUClasses]int
	for _, pe := range f.PEs {
		for c := dfg.FUClass(0); c < dfg.NumFUClasses; c++ {
			if pe.Supports(c) {
				out[c]++
			}
		}
	}
	return out
}

// NumLinks is the number of directed mesh link channels (each adjacent
// pair has LinkChannels channels in each direction).
func (f *Fabric) NumLinks() int {
	return 2 * (f.Rows*(f.Cols-1) + f.Cols*(f.Rows-1)) * f.LinkChannels
}

// defaultPorts is the port provisioning of DESIGN.md §6: a spread of
// widths with 64-word buffers, plus two indirect ports per direction.
func defaultPorts() (in, out []PortSpec) {
	widths := []int{8, 8, 4, 4, 2, 2, 1, 1}
	for _, w := range widths {
		in = append(in, PortSpec{Width: w, Depth: 64})
		out = append(out, PortSpec{Width: w, Depth: 64})
	}
	for i := 0; i < 2; i++ {
		in = append(in, PortSpec{Width: 4, Depth: 64, Indirect: true})
	}
	return in, out
}

// NewFabric builds a rows x cols fabric where every PE supports the given
// FU classes, with default ports and delay FIFOs.
func NewFabric(rows, cols int, classes ...dfg.FUClass) *Fabric {
	mask := ClassMask(classes...)
	pes := make([]PE, rows*cols)
	for i := range pes {
		pes[i] = PE{Classes: mask}
	}
	in, out := defaultPorts()
	return &Fabric{
		Rows: rows, Cols: cols, PEs: pes,
		MaxDelay:     63,
		InjectPerPE:  2,
		EjectPerPE:   2,
		LinkChannels: 2,
		InPorts:      in,
		OutPorts:     out,
	}
}

// DNNFabric is the 5x4 fabric provisioned for the DianNao comparison:
// every PE has a 4-way 16-bit subword multiplier and ALU, and the last
// row adds sigmoid units (Section 7.1).
func DNNFabric() *Fabric {
	f := NewFabric(5, 4, dfg.FUAlu, dfg.FUMul)
	for c := 0; c < f.Cols; c++ {
		i := f.At(f.Rows-1, c)
		f.PEs[i].Classes |= 1 << dfg.FUSig
	}
	return f
}

// BroadFabric is the broadly provisioned fabric for the MachSuite study
// (Section 7.2): the FU mix is the maximum needed across the workloads —
// ALUs everywhere, multipliers on most PEs, plus dividers and sigmoid
// units sprinkled in.
func BroadFabric() *Fabric {
	f := NewFabric(5, 4, dfg.FUAlu, dfg.FUMul)
	for r := 0; r < f.Rows; r++ {
		f.PEs[f.At(r, 0)].Classes |= 1 << dfg.FUDiv
	}
	for c := 0; c < f.Cols; c++ {
		f.PEs[f.At(f.Rows-1, c)].Classes |= 1 << dfg.FUSig
	}
	return f
}
