// Package softbrain is a functional, cycle-level reproduction of the
// stream-dataflow architecture and its Softbrain implementation from
// "Stream-Dataflow Acceleration" (Nowatzki, Gangadhar, Ardalani,
// Sankaralingam — ISCA 2017).
//
// The package is a facade over the implementation packages: it exposes
// everything needed to build dataflow graphs, compile them onto the
// CGRA, write stream-dataflow programs (the full Table 2 command set),
// and run them on a simulated Softbrain unit or multi-unit cluster with
// power and area models.
//
// A minimal program (the paper's Figure 4 dot product):
//
//	cfg := softbrain.DefaultConfig()
//	m, _ := softbrain.NewMachine(cfg)
//
//	b := softbrain.NewGraph("dotprod")
//	a, v := b.Input("A", 3), b.Input("B", 3)
//	var prods []softbrain.Ref
//	for i := 0; i < 3; i++ {
//		prods = append(prods, b.N(softbrain.Mul(64), a.W(i), v.W(i)))
//	}
//	b.Output("C", b.ReduceTree(softbrain.Add(64), prods...))
//	g, _ := b.Build()
//
//	p := softbrain.NewProgram("dotprod")
//	p.CompileAndConfigure(cfg.Fabric, g)
//	p.Emit(softbrain.MemPort{Src: softbrain.Linear(aAddr, n*8), Dst: p.In("A")})
//	p.Emit(softbrain.MemPort{Src: softbrain.Linear(bAddr, n*8), Dst: p.In("B")})
//	p.Emit(softbrain.PortMem{Src: p.Out("C"), Dst: softbrain.Linear(rAddr, n/3*8)})
//	p.Emit(softbrain.BarrierAll{})
//	stats, _ := m.Run(p)
package softbrain

import (
	"softbrain/internal/cgra"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/faults"
	"softbrain/internal/fix"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
	"softbrain/internal/mem"
	"softbrain/internal/power"
	"softbrain/internal/sched"
)

// Machine assembly and execution (see internal/core).
type (
	// Config parameterizes one Softbrain unit: fabric, memory timing,
	// scratchpad size, queue depths and issue costs.
	Config = core.Config
	// Machine is one Softbrain unit: control core, dispatcher, stream
	// engines, vector ports, scratchpad and CGRA over a memory system.
	Machine = core.Machine
	// Cluster is several units sharing backing memory and DRAM
	// bandwidth, each with a private cache.
	Cluster = core.Cluster
	// Program is a stream-dataflow program: configurations plus the
	// command trace the control core replays.
	Program = core.Program

	// TraceOp is one step of a Program's control trace: a stream
	// command or a host-side delay.
	TraceOp = core.TraceOp
	// Stats aggregates a run's cycle counts and activity.
	Stats = core.Stats
	// DeadlockError reports a run that stopped making progress, with
	// the hang classified and the culprit stream and port named (see
	// docs/ROBUSTNESS.md).
	DeadlockError = core.DeadlockError
	// HangClass classifies a DeadlockError.
	HangClass = core.HangClass
	// MachineError is an invariant violation recovered at Run: the
	// machine is wedged, but the failure arrives as an error naming the
	// component and cycle, never as a panic.
	MachineError = core.MachineError
	// CanceledError is a run ended early by its context (caller cancel
	// or wall-clock deadline): the machine was healthy, the host gave
	// up. Returned by the RunContext family; unwraps to the context
	// cause, so errors.Is(err, context.Canceled) works.
	CanceledError = core.CanceledError
	// Memory is the byte-addressable functional backing store.
	Memory = mem.Memory
)

// Hang classes a DeadlockError can carry.
const (
	HangUnknown           = core.HangUnknown
	HangWatchdog          = core.HangWatchdog
	HangPortUndersupply   = core.HangPortUndersupply
	HangPortOversupply    = core.HangPortOversupply
	HangStarvedRecurrence = core.HangStarvedRecurrence
	HangDrainedUnread     = core.HangDrainedUnread
	HangBarrierDeadlock   = core.HangBarrierDeadlock
)

// Dataflow graphs (see internal/dfg).
type (
	// Graph is a dataflow graph: the computation abstraction.
	Graph = dfg.Graph
	// GraphBuilder constructs Graphs programmatically.
	GraphBuilder = dfg.Builder
	// Ref names a dataflow value (port word, node result or immediate).
	Ref = dfg.Ref
	// Op is one dataflow operation at a sub-word lane width.
	Op = dfg.Op
	// Evaluator executes a Graph functionally, instance by instance.
	Evaluator = dfg.Evaluator
)

// Hardware description and compilation (see internal/cgra and
// internal/sched).
type (
	// Fabric describes the CGRA: PE grid, FU mix, links, vector ports.
	Fabric = cgra.Fabric
	// Schedule is a compiled CGRA configuration for one Graph.
	Schedule = cgra.Schedule
	// PowerModel converts run statistics into power and energy.
	PowerModel = power.Model
)

// ISA values (see internal/isa): the Table 2 command set.
type (
	// Command is one stream-dataflow command.
	Command = isa.Command
	// Affine is the two-dimensional affine access pattern of Figure 5.
	Affine = isa.Affine
	// InPortID and OutPortID name hardware vector ports.
	InPortID  = isa.InPortID
	OutPortID = isa.OutPortID
	// ElemSize is a stream element size in bytes.
	ElemSize = isa.ElemSize

	ConfigCmd       = isa.Config // SD_Config (machine Config is the struct above)
	MemScratch      = isa.MemScratch
	ScratchPort     = isa.ScratchPort
	MemPort         = isa.MemPort
	ConstPort       = isa.ConstPort
	CleanPort       = isa.CleanPort
	PortPort        = isa.PortPort
	PortScratch     = isa.PortScratch
	PortMem         = isa.PortMem
	IndPortPort     = isa.IndPortPort
	IndPortMem      = isa.IndPortMem
	BarrierScratchR = isa.BarrierScratchRd
	BarrierScratchW = isa.BarrierScratchWr
	BarrierAll      = isa.BarrierAll
)

// Element sizes.
const (
	Elem8  = isa.Elem8
	Elem16 = isa.Elem16
	Elem32 = isa.Elem32
	Elem64 = isa.Elem64
)

// DefaultConfig is the broadly provisioned Softbrain of Section 7.2.
func DefaultConfig() Config { return core.DefaultConfig() }

// DNNConfig is the DianNao-comparison configuration of Section 7.1.
func DNNConfig() Config { return core.DNNConfig() }

// NewMachine builds one Softbrain unit.
func NewMachine(cfg Config) (*Machine, error) { return core.NewMachine(cfg) }

// NewCluster builds n units over shared memory.
func NewCluster(cfg Config, n int) (*Cluster, error) { return core.NewCluster(cfg, n) }

// NewProgram starts an empty stream-dataflow program.
func NewProgram(name string) *Program { return core.NewProgram(name) }

// NewGraph starts a dataflow-graph builder.
func NewGraph(name string) *GraphBuilder { return dfg.NewBuilder(name) }

// ParseGraph reads a graph in the .dfg text format.
func ParseGraph(text string) (*Graph, error) { return dfg.ParseString(text) }

// Compile schedules g onto f: placement, routing, delay matching and
// vector-port mapping.
func Compile(f *Fabric, g *Graph) (*Schedule, error) { return sched.Schedule(f, g) }

// NewPowerModel builds the Table 3 power/area model for cfg.
func NewPowerModel(cfg Config) *PowerModel { return power.NewModel(cfg) }

// Static hazard analysis (see internal/lint and docs/LINT.md): the
// barrier semantics of Section 3.3 make unordered overlapping streams
// undefined, and the linter diagnoses them before anything runs.

// LintFinding is one statically diagnosed hazard in a program.
type LintFinding = lint.Finding

// LintProgram statically checks p against the machine configuration
// that would run it; findings are returned in trace order.
func LintProgram(p *Program, cfg Config) ([]LintFinding, error) { return lint.Check(p, cfg) }

// LintHook adapts the linter to Machine.Lint, for use with
// Machine.LoadStrict / RunStrict:
//
//	m.Lint = softbrain.LintHook(m.Config())
func LintHook(cfg Config) func(*Program) error { return lint.Hook(cfg) }

// LintResult is a full analysis result: findings plus the per-check
// bytes-checked totals.
type LintResult = lint.Result

// LintRegion declares one shared DRAM byte range [Lo, Hi) of a checked
// cluster pipeline: the only bytes where inter-unit overlap involving a
// writer is legal, under the single-writer phase-ordered rules.
type LintRegion = lint.Region

// ClusterLintOpts tunes a cluster-scope analysis.
type ClusterLintOpts = lint.ClusterOpts

// LintCluster statically checks one concurrent program set (one
// program per unit) for inter-unit hazards over shared DRAM.
func LintCluster(progs []*Program, cfg Config, o ClusterLintOpts) (LintResult, error) {
	return lint.CheckCluster(progs, cfg, o)
}

// LintPipeline statically checks a phased program set: phases run
// sequentially, units within a phase run concurrently, and the phase
// boundary is the only inter-unit ordering.
func LintPipeline(phases [][]*Program, cfg Config, o ClusterLintOpts) (LintResult, error) {
	return lint.CheckPipeline(phases, cfg, o)
}

// ClusterLintHook adapts the cluster analysis to Cluster.Lint, for use
// with Cluster.RunStrict / RunPipelineStrict:
//
//	cl.Lint = softbrain.ClusterLintHook(cfg, softbrain.ClusterLintOpts{})
func ClusterLintHook(cfg Config, o ClusterLintOpts) func([][]*Program) error {
	return lint.ClusterHook(cfg, o)
}

// FixReport describes the barrier edits FixProgram made: the inserted
// and removed barriers with their positions and reasons, plus the
// before/after barrier counts.
type FixReport = fix.Report

// FixProgram returns a barrier-repaired copy of p: the weakest
// sufficient barrier is inserted at every diagnosed race, and every
// barrier whose removal provably creates no new hazard is deleted. The
// input program is not modified. See internal/fix and docs/LINT.md.
func FixProgram(p *Program, cfg Config) (*Program, *FixReport, error) { return fix.Fix(p, cfg) }

// FixOpts configures FixProgramWithOpts: a measured per-barrier drain
// profile (the barrier_drains section of a metrics dump; see
// BarrierProfile) enables profile-guided cost-aware barrier placement.
type FixOpts = fix.HoistOpts

// BarrierProfile is per-barrier drain cycles keyed by trace position;
// extract one from a metrics dump unit with fix.ProfileFromUnit.
type BarrierProfile = fix.Profile

// FixProgramWithOpts is FixProgram plus cost-aware placement: barriers
// with profiled drain cycles are hoisted within their legal placement
// intervals so the drain overlaps unrelated in-flight streams. With a
// zero FixOpts it is exactly FixProgram. See docs/LINT.md ("Placement
// intervals & cost-aware hoisting").
func FixProgramWithOpts(p *Program, cfg Config, o FixOpts) (*Program, *FixReport, error) {
	return fix.FixWithOpts(p, cfg, o)
}

// BarrierInterval is one barrier's legal placement range: the
// contiguous slots where it still orders every race pair it protects
// and creates no new hazard.
type BarrierInterval = fix.Interval

// BarrierIntervals computes the legal placement interval of every
// barrier in p, in trace order.
func BarrierIntervals(p *Program, cfg Config) ([]BarrierInterval, error) {
	return fix.Intervals(p, cfg)
}

// Fault injection (see internal/faults and docs/ROBUSTNESS.md).

// FaultConfig describes a deterministic seeded fault profile; assign a
// pointer to Config.Faults to run a machine or cluster under it.
type FaultConfig = faults.Config

// FaultStats counts the faults an injector actually delivered.
type FaultStats = faults.Stats

// FaultProfiles lists the named fault profiles.
func FaultProfiles() []string { return faults.Profiles() }

// FaultProfile returns the named fault profile with the given seed.
func FaultProfile(name string, seed int64) (FaultConfig, error) { return faults.Profile(name, seed) }

// NewFabric builds a custom fabric; see also DefaultConfig().Fabric.
func NewFabric(rows, cols int) *Fabric {
	return cgra.NewFabric(rows, cols, dfg.FUAlu, dfg.FUMul, dfg.FUDiv, dfg.FUSig)
}

// Access-pattern constructors (Figure 5).

// Linear is a contiguous pattern of n bytes at start.
func Linear(start, n uint64) Affine { return isa.Linear(start, n) }

// Strided2D reads rows of rowBytes separated by pitch, rows times.
func Strided2D(start, rowBytes, pitch, rows uint64) Affine {
	return isa.Strided2D(start, rowBytes, pitch, rows)
}

// Repeat re-reads the same n bytes times times.
func Repeat(start, n, times uint64) Affine { return isa.Repeat(start, n, times) }

// Dataflow operation constructors; w is the lane width in bits
// (8, 16, 32 or 64 — sub-word SIMD packs 64/w lanes per word).

func Add(w uint8) Op    { return dfg.Add(w) }
func Sub(w uint8) Op    { return dfg.Sub(w) }
func Mul(w uint8) Op    { return dfg.Mul(w) }
func Div(w uint8) Op    { return dfg.Div(w) }
func Min(w uint8) Op    { return dfg.Min(w) }
func Max(w uint8) Op    { return dfg.Max(w) }
func Abs(w uint8) Op    { return dfg.Abs(w) }
func And(w uint8) Op    { return dfg.And(w) }
func Or(w uint8) Op     { return dfg.Or(w) }
func Xor(w uint8) Op    { return dfg.Xor(w) }
func Shl(w uint8) Op    { return dfg.Shl(w) }
func Shr(w uint8) Op    { return dfg.Shr(w) }
func Ashr(w uint8) Op   { return dfg.Ashr(w) }
func Eq(w uint8) Op     { return dfg.Eq(w) }
func Lt(w uint8) Op     { return dfg.Lt(w) }
func Sel(w uint8) Op    { return dfg.Sel(w) }
func Acc(w uint8) Op    { return dfg.Acc(w) }
func AccMin(w uint8) Op { return dfg.AccMin(w) }
func AccMax(w uint8) Op { return dfg.AccMax(w) }
func RedAdd(w uint8) Op { return dfg.RedAdd(w) }
func RedMin(w uint8) Op { return dfg.RedMin(w) }
func Sig(w uint8) Op    { return dfg.Sig(w) }

// ImmRef references a constant folded into the PE configuration.
func ImmRef(v uint64) Ref { return dfg.ImmRef(v) }
