// Benchmarks that regenerate every table and figure of the paper's
// evaluation section. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the headline quantity of its artifact as a
// custom metric (speedups, efficiency ratios, relative areas), so the
// benchmark output reads as the paper's results.
package softbrain_test

import (
	"sync"
	"testing"

	"softbrain/internal/baseline"
	"softbrain/internal/bench"
	"softbrain/internal/core"
	"softbrain/internal/power"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/machsuite"
)

// BenchmarkTable3AreaPower regenerates the Table 3 breakdown and its
// DianNao comparison.
func BenchmarkTable3AreaPower(b *testing.B) {
	var r bench.Table3Result
	for i := 0; i < b.N; i++ {
		r = bench.Table3()
	}
	b.ReportMetric(r.UnitArea, "mm2/unit")
	b.ReportMetric(r.UnitPower, "mW/unit")
	b.ReportMetric(r.AreaOverhead, "area-vs-diannao")
	b.ReportMetric(r.PowerOverhead, "power-vs-diannao")
}

// BenchmarkTable4Characterization regenerates the Table 4 rows.
func BenchmarkTable4Characterization(b *testing.B) {
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(bench.Table4())
	}
	b.ReportMetric(float64(n), "workloads")
}

// BenchmarkFig11DNN runs each DNN layer on the 8-unit cluster and
// reports its speedup over the single-thread CPU model (the Figure 11
// bars).
func BenchmarkFig11DNN(b *testing.B) {
	cfg := dnn.Config()
	cpu := baseline.SingleThreadCPU()
	dian := baseline.DianNao()
	for _, l := range dnn.Layers() {
		l := l
		b.Run(l.Name, func(b *testing.B) {
			inst, err := l.Build(cfg, dnn.Units)
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				stats, err := inst.RunWarm(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = stats.Cycles
			}
			cpuNS := cpu.TimeNS(inst.Profile)
			b.ReportMetric(cpuNS/float64(cycles), "speedup-vs-cpu")
			b.ReportMetric(cpuNS/dian.TimeNS(inst.Profile), "diannao-speedup")
			b.ReportMetric(float64(cycles), "softbrain-cycles")
		})
	}
}

// BenchmarkFig12Perf runs each MachSuite workload on Softbrain and
// reports the Figure 12 speedup over the OOO4 model.
func BenchmarkFig12Perf(b *testing.B) {
	cfg := core.DefaultConfig()
	ooo := baseline.OOO4()
	for _, e := range machsuite.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			inst, err := e.Build(cfg, 2)
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				stats, err := inst.RunWarm(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = stats.Cycles
			}
			b.ReportMetric(ooo.TimeNS(inst.Profile)/float64(cycles), "speedup-vs-ooo4")
			b.ReportMetric(float64(cycles), "softbrain-cycles")
		})
	}
}

// The full Figures 12-15 study is expensive; compute it once and let
// the Figure 13-15 benchmarks report its derived metrics.
var (
	studyOnce sync.Once
	studyRows []bench.MachRow
	studyErr  error
)

func study(b *testing.B) []bench.MachRow {
	studyOnce.Do(func() { studyRows, studyErr = bench.MachSuiteStudy() })
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyRows
}

// BenchmarkFig13Power reports the Figure 13 power-efficiency bars.
func BenchmarkFig13Power(b *testing.B) {
	var rows []bench.MachRow
	for i := 0; i < b.N; i++ {
		rows = study(b)
	}
	for _, r := range rows {
		if r.Workload == "GM" {
			b.ReportMetric(r.SoftbrainPowerEff, "softbrain-poweff-GM")
			b.ReportMetric(r.ASICPowerEff, "asic-poweff-GM")
		}
	}
}

// BenchmarkFig14Energy reports the Figure 14 energy-efficiency bars.
func BenchmarkFig14Energy(b *testing.B) {
	var rows []bench.MachRow
	for i := 0; i < b.N; i++ {
		rows = study(b)
	}
	for _, r := range rows {
		if r.Workload == "GM" {
			b.ReportMetric(r.SoftbrainEnergyEff, "softbrain-eneff-GM")
			b.ReportMetric(r.ASICEnergyEff, "asic-eneff-GM")
		}
	}
}

// BenchmarkFig15Area reports the Figure 15 relative-area bars.
func BenchmarkFig15Area(b *testing.B) {
	var rows []bench.MachRow
	for i := 0; i < b.N; i++ {
		rows = study(b)
	}
	for _, r := range rows {
		if r.Workload == "GM" {
			b.ReportMetric(r.ASICAreaRel, "asic-area-rel-GM")
		}
	}
	b.ReportMetric(bench.TotalASICArea(rows)/bench.Table3().UnitArea, "all-asics-vs-softbrain")
}

// BenchmarkPowerModel measures the power model itself.
func BenchmarkPowerModel(b *testing.B) {
	model := power.NewModel(dnn.Config())
	stats := &core.Stats{Cycles: 10000, FUOps: 400000, CoreInstrs: 5000, Instances: 8000}
	var mw float64
	for i := 0; i < b.N; i++ {
		mw = model.AveragePower(stats, 8)
	}
	b.ReportMetric(mw, "mW")
}
