// SpMV: sparse matrix-vector multiply over CRS storage, the indirect-
// access showcase. Column indices stream into an indirect vector port;
// an SD_IndPort_Port stream gathers x[col[j]] through the indirect AGU
// (coalescing up to four same-line addresses per cycle); a single
// multiply-accumulate datapath reduces each row. The program is built
// in examples/programs (see SpMV there), so the linter and tests audit
// exactly what this binary runs.
package main

import (
	"log"

	"softbrain/examples/programs"
)

func main() {
	ex, err := programs.SpMV()
	if err != nil {
		log.Fatal(err)
	}
	m, stats, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	ex.Report(m, stats)
}
