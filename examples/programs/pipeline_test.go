package programs_test

import (
	"testing"

	"softbrain/examples/programs"
	"softbrain/internal/core"
)

// TestPipelineStrictRun proves the shared-region pipeline example does
// what docs/LINT.md promises: it passes the cluster linter (the strict
// run refuses otherwise) and its golden-model check.
func TestPipelineStrictRun(t *testing.T) {
	e, err := programs.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(false); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineParallelMatchesSequential runs the example under both
// cluster schedulers and demands byte-identical memory: the declared
// shared region plus phase ordering is sufficient for determinism, with
// no inter-unit synchronization command anywhere in the programs.
func TestPipelineParallelMatchesSequential(t *testing.T) {
	seq, err := programs.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	seqMem, seqStats, err := seq.Run(true)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := programs.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	parMem, parStats, err := par.Run(false)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	// Diffs at/above ConfigSpace are the per-process configuration
	// bitstream slots, which differ between the two builds by design.
	if addr, diff := seqMem.FirstDiff(parMem); diff && addr < core.ConfigSpace {
		t.Fatalf("parallel and sequential memories differ first at %#x", addr)
	}
	if seqStats.Instances != parStats.Instances {
		t.Fatalf("instances differ: sequential %d, parallel %d", seqStats.Instances, parStats.Instances)
	}
}

// TestPipelineUndeclaredRegionRefused strips the region declaration and
// expects the strict run to refuse the same programs: the overlap on
// the staging buffer is only legal because it is declared and ordered.
func TestPipelineUndeclaredRegionRefused(t *testing.T) {
	e, err := programs.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	e.Regions = nil
	if _, _, err := e.Run(false); err == nil {
		t.Fatal("undeclared shared region accepted by the strict run")
	}
}
