package programs

import (
	"fmt"
	"math/rand"

	"softbrain"
)

// SpMV is sparse matrix-vector multiply over CRS storage, the indirect-
// access showcase. Column indices stream into an indirect vector port;
// an SD_IndPort_Port stream gathers x[col[j]] through the indirect AGU
// (coalescing up to four same-line addresses per cycle); a single
// multiply-accumulate datapath reduces each row.
func SpMV() (Example, error) {
	cfg := softbrain.DefaultConfig()

	// DFG: y += val * x_gathered, reset per row.
	b := softbrain.NewGraph("spmv")
	v := b.Input("V", 1)
	x := b.Input("X", 1)
	r := b.Input("R", 1)
	b.Output("Y", b.N(softbrain.Acc(64), b.N(softbrain.Mul(64), v.W(0), x.W(0)), r.W(0)))
	g, err := b.Build()
	if err != nil {
		return Example{}, err
	}

	// A random sparse matrix in CRS form.
	const rows = 64
	rng := rand.New(rand.NewSource(7))
	ptr := []int{0}
	var col []uint32
	var val []int64
	xs := make([]int64, rows)
	for i := range xs {
		xs[i] = int64(rng.Intn(19) - 9)
	}
	for i := 0; i < rows; i++ {
		nnz := 1 + rng.Intn(9)
		for j := 0; j < nnz; j++ {
			col = append(col, uint32(rng.Intn(rows)))
			val = append(val, int64(rng.Intn(11)-5))
		}
		ptr = append(ptr, len(col))
	}

	const colAddr, valAddr, xAddr, yAddr = 0x10000, 0x20000, 0x30000, 0x40000

	p := softbrain.NewProgram("spmv")
	p.CompileAndConfigure(cfg.Fabric, g)
	ind := p.IndirectIn(cfg.Fabric, 0)
	for i := 0; i < rows; i++ { // the host walks the row pointers
		cnt := uint64(ptr[i+1] - ptr[i])
		base := uint64(ptr[i])
		p.Emit(softbrain.MemPort{Src: softbrain.Linear(colAddr+4*base, cnt*4), Dst: ind})
		p.Emit(softbrain.IndPortPort{
			Idx: ind, IdxElem: softbrain.Elem32, Offset: xAddr, Scale: 8,
			DataElem: softbrain.Elem64, Count: cnt, Dst: p.In("X"),
		})
		p.Emit(softbrain.MemPort{Src: softbrain.Linear(valAddr+8*base, cnt*8), Dst: p.In("V")})
		if cnt > 1 {
			p.Emit(softbrain.ConstPort{Value: 0, Elem: softbrain.Elem64, Count: cnt - 1, Dst: p.In("R")})
			p.Emit(softbrain.CleanPort{Src: p.Out("Y"), Elem: softbrain.Elem64, Count: cnt - 1})
		}
		p.Emit(softbrain.ConstPort{Value: 1, Elem: softbrain.Elem64, Count: 1, Dst: p.In("R")})
		p.Emit(softbrain.PortMem{Src: p.Out("Y"), Dst: softbrain.Linear(yAddr+8*uint64(i), 8)})
	}
	p.Emit(softbrain.BarrierAll{})

	nnz := len(val)
	return Example{
		Name: "spmv",
		Cfg:  cfg,
		Prog: p,
		Init: func(m *softbrain.Memory) {
			for i, c := range col {
				m.WriteUint(colAddr+4*uint64(i), 4, uint64(c))
			}
			for i, vv := range val {
				m.WriteU64(valAddr+8*uint64(i), uint64(vv))
			}
			for i, vv := range xs {
				m.WriteU64(xAddr+8*uint64(i), uint64(vv))
			}
		},
		Check: func(m *softbrain.Memory) error {
			for i := 0; i < rows; i++ {
				var want int64
				for j := ptr[i]; j < ptr[i+1]; j++ {
					want += val[j] * xs[col[j]]
				}
				if got := int64(m.ReadU64(yAddr + 8*uint64(i))); got != want {
					return fmt.Errorf("y[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Report: func(m *softbrain.Memory, stats *softbrain.Stats) {
			fmt.Printf("spmv %d rows, %d nonzeros: OK\n", rows, nnz)
			fmt.Printf("  cycles: %d (%.2f per nonzero)\n", stats.Cycles, float64(stats.Cycles)/float64(nnz))
			fmt.Printf("  gathers through the indirect AGU: %d\n", nnz)
		},
	}, nil
}
