package programs

import (
	"fmt"

	"softbrain"
)

// Classifier is the paper's Figure 6 end to end — a dense neural network
// layer (matrix-vector product plus sigmoid) with every stream-dataflow
// feature the example uses: the scratchpad for neuron reuse, a
// scratch-write barrier, constant streams driving the accumulator
// reset, port cleaning of partial sums, and 16-bit sub-word arithmetic.
func Classifier() (Example, error) {
	const (
		ni = 256 // input neurons (elements of 16 bits)
		nn = 10  // output neurons
	)
	cfg := softbrain.DNNConfig()

	// DFG: four 4-way 16-bit multipliers, lane reductions, an adder
	// tree, a resettable accumulator, and the sigmoid unit. One instance
	// consumes 16 synapse and 16 neuron elements.
	b := softbrain.NewGraph("classifier")
	s := b.Input("S", 4)
	n := b.Input("N", 4)
	r := b.Input("R", 1)
	var reds []softbrain.Ref
	for i := 0; i < 4; i++ {
		prod := b.N(softbrain.Mul(16), s.W(i), n.W(i))
		reds = append(reds, b.N(softbrain.RedAdd(16), prod))
	}
	sum := b.ReduceTree(softbrain.Add(64), reds...)
	acc := b.N(softbrain.Acc(64), sum, r.W(0))
	b.OutputElem("C", 2, b.N(softbrain.Sig(16), acc))
	g, err := b.Build()
	if err != nil {
		return Example{}, err
	}

	// uint16 synapse[Nn][Ni], neuron_i[Ni], neuron_n[Nn].
	const synAddr, inAddr, outAddr = 0x10000, 0x40000, 0x50000
	synapse := make([]int16, nn*ni)
	neuron := make([]int16, ni)
	for i := range neuron {
		neuron[i] = int16(i%9 - 4)
	}
	for j := range synapse {
		synapse[j] = int16(j%11 - 5)
	}

	// The stream-dataflow program of Figure 6.
	instPerNeuron := uint64(ni / 16)
	p := softbrain.NewProgram("classifier")
	p.CompileAndConfigure(cfg.Fabric, g)
	p.Emit(softbrain.MemPort{Src: softbrain.Linear(synAddr, nn*ni*2), Dst: p.In("S")})
	p.Emit(softbrain.MemScratch{Src: softbrain.Linear(inAddr, ni*2), ScratchAddr: 0})
	p.Emit(softbrain.BarrierScratchW{})
	p.Emit(softbrain.ScratchPort{Src: softbrain.Repeat(0, ni*2, nn), Dst: p.In("N")})
	for o := 0; o < nn; o++ { // for each output neuron
		p.Emit(softbrain.ConstPort{Value: 0, Elem: softbrain.Elem64, Count: instPerNeuron - 1, Dst: p.In("R")})
		p.Emit(softbrain.ConstPort{Value: 1, Elem: softbrain.Elem64, Count: 1, Dst: p.In("R")})
		p.Emit(softbrain.CleanPort{Src: p.Out("C"), Elem: softbrain.Elem16, Count: instPerNeuron - 1})
		p.Emit(softbrain.PortMem{Src: p.Out("C"), Dst: softbrain.Linear(outAddr+2*uint64(o), 2)})
	}
	p.Emit(softbrain.BarrierAll{})

	// The host model: Q8.8 piecewise sigmoid over the golden dot products.
	sigmoid := func(x int64) uint16 {
		switch {
		case x <= -1024:
			return 0
		case x >= 1024:
			return 256
		default:
			return uint16(128 + x/8)
		}
	}
	dot := func(o int) int64 {
		var d int64
		for i := 0; i < ni; i++ {
			d += int64(synapse[o*ni+i]) * int64(neuron[i])
		}
		return d
	}

	return Example{
		Name: "classifier",
		Cfg:  cfg,
		Prog: p,
		Init: func(m *softbrain.Memory) {
			for i := range neuron {
				m.WriteUint(inAddr+2*uint64(i), 2, uint64(uint16(neuron[i])))
			}
			for j := range synapse {
				m.WriteUint(synAddr+2*uint64(j), 2, uint64(uint16(synapse[j])))
			}
		},
		Check: func(m *softbrain.Memory) error {
			for o := 0; o < nn; o++ {
				got := uint16(m.ReadUint(outAddr+2*uint64(o), 2))
				if want := sigmoid(dot(o)); got != want {
					return fmt.Errorf("neuron_n[%d] = %d, want %d", o, got, want)
				}
			}
			return nil
		},
		Report: func(m *softbrain.Memory, stats *softbrain.Stats) {
			fmt.Printf("classifier %dx%d on Softbrain:\n", nn, ni)
			for o := 0; o < nn; o++ {
				got := uint16(m.ReadUint(outAddr+2*uint64(o), 2))
				fmt.Printf("  neuron_n[%d] = %3d (sum %6d)\n", o, got, dot(o))
			}
			fmt.Printf("cycles: %d, instances: %d, MACs: %d, scratch reuse: %d bytes read\n",
				stats.Cycles, stats.Instances, uint64(nn*ni), stats.ScratchBytesRead)
		},
	}, nil
}
