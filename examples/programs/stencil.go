package programs

import (
	"fmt"

	"softbrain"
)

// Stencil is a 3x3 filter over a 2D grid using the overlapped affine
// access pattern of Figure 5 and a recurrence stream that recirculates
// the output row across the nine filter taps — no partial sums ever
// touch memory.
func Stencil() (Example, error) {
	cfg := softbrain.DefaultConfig()

	// DFG: eight lanes of out = in*coeff + partial, per instance.
	b := softbrain.NewGraph("stencil2d")
	x := b.Input("X", 8)
	f := b.Input("F", 1)
	c := b.Input("C", 8)
	var outs []softbrain.Ref
	for j := 0; j < 8; j++ {
		outs = append(outs, b.N(softbrain.Add(64), c.W(j), b.N(softbrain.Mul(64), f.W(0), x.W(j))))
	}
	b.Output("O", outs...)
	g, err := b.Build()
	if err != nil {
		return Example{}, err
	}

	const w, h = 34, 18 // grid; output is (w-2) x (h-2)
	ow, oh := w-2, h-2
	filter := []int64{1, 2, 1, 2, 4, 2, 1, 2, 1} // Gaussian-ish
	const inAddr, outAddr = 0x10000, 0x40000
	grid := make([]int64, w*h)
	for i := range grid {
		grid[i] = int64((i*7)%23 - 11)
	}

	p := softbrain.NewProgram("stencil2d")
	p.CompileAndConfigure(cfg.Fabric, g)
	for r := 0; r < oh; r++ {
		tap := 0
		for kr := 0; kr < 3; kr++ {
			for kc := 0; kc < 3; kc++ {
				src := inAddr + uint64(((r+kr)*w+kc)*8)
				p.Emit(softbrain.MemPort{Src: softbrain.Linear(src, uint64(ow)*8), Dst: p.In("X")})
				p.Emit(softbrain.ConstPort{
					Value: uint64(filter[3*kr+kc]), Elem: softbrain.Elem64,
					Count: uint64(ow / 8), Dst: p.In("F"),
				})
				if tap == 0 {
					p.Emit(softbrain.ConstPort{Value: 0, Elem: softbrain.Elem64, Count: uint64(ow), Dst: p.In("C")})
				} else {
					// Recurrence: the partial row loops straight back.
					p.Emit(softbrain.PortPort{Src: p.Out("O"), Elem: softbrain.Elem64, Count: uint64(ow), Dst: p.In("C")})
				}
				tap++
			}
		}
		p.Emit(softbrain.PortMem{Src: p.Out("O"), Dst: softbrain.Linear(outAddr+uint64(r*ow*8), uint64(ow)*8)})
	}
	p.Emit(softbrain.BarrierAll{})

	return Example{
		Name: "stencil",
		Cfg:  cfg,
		Prog: p,
		Init: func(m *softbrain.Memory) {
			for i := range grid {
				m.WriteU64(inAddr+8*uint64(i), uint64(grid[i]))
			}
		},
		Check: func(m *softbrain.Memory) error {
			for r := 0; r < oh; r++ {
				for cc := 0; cc < ow; cc++ {
					var want int64
					for kr := 0; kr < 3; kr++ {
						for kc := 0; kc < 3; kc++ {
							want += filter[3*kr+kc] * grid[(r+kr)*w+cc+kc]
						}
					}
					got := int64(m.ReadU64(outAddr + uint64((r*ow+cc)*8)))
					if got != want {
						return fmt.Errorf("out[%d][%d] = %d, want %d", r, cc, got, want)
					}
				}
			}
			return nil
		},
		Report: func(m *softbrain.Memory, stats *softbrain.Stats) {
			fmt.Printf("3x3 stencil over %dx%d grid: OK\n", w, h)
			fmt.Printf("  cycles: %d, instances: %d\n", stats.Cycles, stats.Instances)
			fmt.Printf("  recurrence traffic (partial sums kept on chip): %d bytes\n", stats.RecurrenceBytes)
			fmt.Printf("  memory traffic: %d bytes read, %d written\n", stats.MemBytesRead, stats.MemBytesWritten)
		},
	}, nil
}
