// Package programs builds the example stream-dataflow programs as
// importable values, so the example binaries, the sdlint tool, and the
// regression tests all audit the same artifacts. Each builder returns
// an Example bundling the program with the machine configuration it
// targets, its memory-image initializer, a golden-model checker, and a
// reporter for the example binary's output.
package programs

import (
	"softbrain"
)

// Example is one runnable example program.
type Example struct {
	Name string
	Cfg  softbrain.Config
	Prog *softbrain.Program

	// Init writes the input data into the memory image.
	Init func(m *softbrain.Memory)

	// Check compares the memory image against the host computation
	// after the run.
	Check func(m *softbrain.Memory) error

	// Report prints the example's human-readable summary.
	Report func(m *softbrain.Memory, stats *softbrain.Stats)
}

// Run executes the example on a fresh machine: initialize, run, verify.
func (e Example) Run() (*softbrain.Memory, *softbrain.Stats, error) {
	m, err := softbrain.NewMachine(e.Cfg)
	if err != nil {
		return nil, nil, err
	}
	e.Init(m.Sys.Mem)
	stats, err := m.Run(e.Prog)
	if err != nil {
		return nil, nil, err
	}
	if err := e.Check(m.Sys.Mem); err != nil {
		return nil, nil, err
	}
	return m.Sys.Mem, stats, nil
}

// All returns every example, built fresh.
func All() ([]Example, error) {
	var out []Example
	for _, build := range []func() (Example, error){
		Quickstart, Stencil, SpMV, Classifier,
	} {
		e, err := build()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
