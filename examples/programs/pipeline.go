package programs

import (
	"fmt"

	"softbrain"
)

// PipelineExample is a phased multi-unit example: phases[k][u] is the
// program unit u runs in phase k. Phases execute sequentially — each
// starts only after every unit of the previous one finished — and that
// phase boundary is the only inter-unit ordering, so cross-unit
// producer/consumer traffic must flow through declared shared regions
// the cluster linter verifies (docs/LINT.md).
type PipelineExample struct {
	Name    string
	Cfg     softbrain.Config
	Phases  [][]*softbrain.Program
	Regions []softbrain.LintRegion

	// Init writes the input data into the memory image.
	Init func(m *softbrain.Memory)

	// Check compares the memory image against the host computation
	// after the run.
	Check func(m *softbrain.Memory) error

	// Report prints the example's human-readable summary.
	Report func(m *softbrain.Memory, stats *softbrain.Stats)
}

// Run executes the pipeline on a fresh cluster under the strict
// contract: the cluster linter (machine scope and cluster scope, with
// the example's shared regions declared) must pass before anything
// runs. sequential selects the lockstep reference scheduler; the
// parallel and sequential schedulers produce byte-identical memory.
func (e PipelineExample) Run(sequential bool) (*softbrain.Memory, *softbrain.Stats, error) {
	if len(e.Phases) == 0 {
		return nil, nil, fmt.Errorf("pipeline %s has no phases", e.Name)
	}
	cl, err := softbrain.NewCluster(e.Cfg, len(e.Phases[0]))
	if err != nil {
		return nil, nil, err
	}
	cl.Sequential = sequential
	cl.Lint = softbrain.ClusterLintHook(e.Cfg, softbrain.ClusterLintOpts{Regions: e.Regions})
	e.Init(cl.Mem)
	stats, err := cl.RunPipelineStrict(e.Phases)
	if err != nil {
		return nil, nil, err
	}
	if err := e.Check(cl.Mem); err != nil {
		return nil, nil, err
	}
	return cl.Mem, stats, nil
}

// Pipeline is the minimal checked shared-region pipeline: two units,
// two phases, one declared region. In phase 0 unit 0 multiplies two
// input vectors element-wise into the staging region; the phase
// boundary publishes it; in phase 1 unit 1 reads the staged products
// and adds a bias into the output buffer. Neither unit ever issues an
// inter-unit synchronization command — none exists in the ISA — yet
// the run is deterministic because the only shared bytes are the
// declared region and the reader runs a phase after the writer, which
// is exactly what the cluster linter proves before the run starts.
func Pipeline() (PipelineExample, error) {
	cfg := softbrain.DefaultConfig()

	const n = 64
	const bias = 7
	const aAddr, bAddr = 0x1_0000, 0x1_4000
	const stageAddr, outAddr = 0x2_0000, 0x3_0000

	mulG, err := binaryGraph("stage-mul", softbrain.Mul(64))
	if err != nil {
		return PipelineExample{}, err
	}
	addG, err := binaryGraph("bias-add", softbrain.Add(64))
	if err != nil {
		return PipelineExample{}, err
	}

	producer := softbrain.NewProgram("producer")
	producer.CompileAndConfigure(cfg.Fabric, mulG)
	producer.Emit(softbrain.MemPort{Src: softbrain.Linear(aAddr, 8*n), Dst: producer.In("A")})
	producer.Emit(softbrain.MemPort{Src: softbrain.Linear(bAddr, 8*n), Dst: producer.In("B")})
	producer.Emit(softbrain.PortMem{Src: producer.Out("C"), Dst: softbrain.Linear(stageAddr, 8*n)})
	producer.Emit(softbrain.BarrierAll{})

	consumer := softbrain.NewProgram("consumer")
	consumer.CompileAndConfigure(cfg.Fabric, addG)
	consumer.Emit(softbrain.MemPort{Src: softbrain.Linear(stageAddr, 8*n), Dst: consumer.In("A")})
	consumer.Emit(softbrain.ConstPort{Value: bias, Elem: softbrain.Elem64, Count: n, Dst: consumer.In("B")})
	consumer.Emit(softbrain.PortMem{Src: consumer.Out("C"), Dst: softbrain.Linear(outAddr, 8*n)})
	consumer.Emit(softbrain.BarrierAll{})

	phases := [][]*softbrain.Program{
		{producer, idleUnit(cfg, "idle-1")},
		{idleUnit(cfg, "idle-0"), consumer},
	}
	for _, ph := range phases {
		for _, p := range ph {
			if err := p.Err(); err != nil {
				return PipelineExample{}, err
			}
		}
	}

	return PipelineExample{
		Name:   "pipeline",
		Cfg:    cfg,
		Phases: phases,
		Regions: []softbrain.LintRegion{
			{Name: "stage", Lo: stageAddr, Hi: stageAddr + 8*n},
		},
		Init: func(m *softbrain.Memory) {
			for i := uint64(0); i < n; i++ {
				m.WriteU64(aAddr+8*i, i%23)
				m.WriteU64(bAddr+8*i, i%19)
			}
		},
		Check: func(m *softbrain.Memory) error {
			for i := uint64(0); i < n; i++ {
				want := (i%23)*(i%19) + bias
				if got := m.ReadU64(outAddr + 8*i); got != want {
					return fmt.Errorf("out[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Report: func(m *softbrain.Memory, stats *softbrain.Stats) {
			fmt.Printf("two-unit shared-region pipeline over %d elements: OK\n", n)
			fmt.Printf("  cycles (phases summed): %d\n", stats.Cycles)
			fmt.Printf("  dataflow instances:     %d\n", stats.Instances)
			fmt.Printf("  control commands:       %d\n", stats.Commands)
		},
	}, nil
}

// binaryGraph builds the one-node graph C = op(A, B), one word each.
func binaryGraph(name string, op softbrain.Op) (*softbrain.Graph, error) {
	b := softbrain.NewGraph(name)
	a := b.Input("A", 1)
	v := b.Input("B", 1)
	b.Output("C", b.N(op, a.W(0), v.W(0)))
	return b.Build()
}

// idleUnit builds a balanced do-nothing program for a unit that sits
// out a phase: one constant-fed instance, output drained, no memory
// traffic at all.
func idleUnit(cfg softbrain.Config, name string) *softbrain.Program {
	g, err := binaryGraph(name, softbrain.Add(64))
	if err != nil {
		panic(err) // static graph, cannot fail
	}
	p := softbrain.NewProgram(name)
	p.CompileAndConfigure(cfg.Fabric, g)
	p.Emit(softbrain.ConstPort{Value: 0, Elem: softbrain.Elem64, Count: 1, Dst: p.In("A")})
	p.Emit(softbrain.ConstPort{Value: 0, Elem: softbrain.Elem64, Count: 1, Dst: p.In("B")})
	// No trailing barrier: the program touches no memory, so there is
	// nothing to order — the fix pass would flag one as redundant.
	p.Emit(softbrain.CleanPort{Src: p.Out("C"), Elem: softbrain.Elem64, Count: 1})
	return p
}
