package programs

import (
	"fmt"

	"softbrain"
)

// Quickstart is the paper's Figure 4 program. A dataflow graph computes
// 3-element dot products; streams load two vectors from memory, store
// the per-instance results, and a barrier ends the phase. The loop of
// the original C code disappears into the stream lengths.
func Quickstart() (Example, error) {
	cfg := softbrain.DefaultConfig()

	// The DFG of Figure 3a: r = a.x*b.x + a.y*b.y + a.z*b.z.
	b := softbrain.NewGraph("dotprod")
	a := b.Input("A", 3)
	v := b.Input("B", 3)
	var prods []softbrain.Ref
	for i := 0; i < 3; i++ {
		prods = append(prods, b.N(softbrain.Mul(64), a.W(i), v.W(i)))
	}
	b.Output("C", b.ReduceTree(softbrain.Add(64), prods...))
	g, err := b.Build()
	if err != nil {
		return Example{}, err
	}

	// The memory image: n 3-vectors in a and b.
	const n = 64 // 3-word vectors
	const aAddr, bAddr, rAddr = 0x1000, 0x4000, 0x8000

	// The stream-dataflow program of Figure 4(a).
	p := softbrain.NewProgram("dotprod")
	p.CompileAndConfigure(cfg.Fabric, g)
	p.Emit(softbrain.MemPort{Src: softbrain.Linear(aAddr, 3*n*8), Dst: p.In("A")})
	p.Emit(softbrain.MemPort{Src: softbrain.Linear(bAddr, 3*n*8), Dst: p.In("B")})
	p.Emit(softbrain.PortMem{Src: p.Out("C"), Dst: softbrain.Linear(rAddr, n*8)})
	p.Emit(softbrain.BarrierAll{})

	return Example{
		Name: "quickstart",
		Cfg:  cfg,
		Prog: p,
		Init: func(m *softbrain.Memory) {
			for i := uint64(0); i < 3*n; i++ {
				m.WriteU64(aAddr+8*i, i%17)
				m.WriteU64(bAddr+8*i, i%13)
			}
		},
		Check: func(m *softbrain.Memory) error {
			for i := uint64(0); i < n; i++ {
				var want uint64
				for j := uint64(0); j < 3; j++ {
					k := 3*i + j
					want += (k % 17) * (k % 13)
				}
				if got := m.ReadU64(rAddr + 8*i); got != want {
					return fmt.Errorf("r[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Report: func(m *softbrain.Memory, stats *softbrain.Stats) {
			model := softbrain.NewPowerModel(cfg)
			fmt.Printf("dot product of %d vectors: OK\n", n)
			fmt.Printf("  cycles:             %d\n", stats.Cycles)
			fmt.Printf("  dataflow instances: %d\n", stats.Instances)
			fmt.Printf("  control commands:   %d (vs ~%d scalar instructions on a CPU)\n",
				stats.Commands, 8*3*n)
			fmt.Printf("  average power:      %.1f mW\n", model.AveragePower(stats, 1))
		},
	}, nil
}
