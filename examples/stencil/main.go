// Stencil: a 3x3 filter over a 2D grid using the overlapped affine
// access pattern of Figure 5 and a recurrence stream that recirculates
// the output row across the nine filter taps — no partial sums ever
// touch memory. The program is built in examples/programs (see Stencil
// there), so the linter and tests audit exactly what this binary runs.
package main

import (
	"log"

	"softbrain/examples/programs"
)

func main() {
	ex, err := programs.Stencil()
	if err != nil {
		log.Fatal(err)
	}
	m, stats, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	ex.Report(m, stats)
}
