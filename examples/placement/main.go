// Placement: the closed loop between the observability layer and the
// static analysis, end to end on the SpMV example. A fully serialized
// program (an SD_Barrier_All after every command — what a cautious
// programmer writes) is repaired by sdfix, normalized to the
// latest-legal barrier placement, profiled for per-barrier drain
// cycles, and then re-placed by the cost-aware chooser, which slides
// each expensive barrier within its legal placement interval and
// commits only simulated improvements. Every variant runs against the
// example's golden checker. See docs/LINT.md ("Placement intervals &
// cost-aware hoisting").
package main

import (
	"fmt"
	"log"

	"softbrain"
	"softbrain/examples/programs"
	"softbrain/internal/fix"
	"softbrain/internal/isa"
	"softbrain/internal/obs"
	"softbrain/internal/wire"
)

func main() {
	ex, err := programs.SpMV()
	if err != nil {
		log.Fatal(err)
	}

	naive := serialize(ex.Prog)
	fixed, rep, err := softbrain.FixProgram(naive, ex.Cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %s: %d barriers; sdfix keeps %d\n",
		ex.Name, rep.BarriersBefore, rep.BarriersAfter)

	latest, _, err := fix.PlaceLatest(fixed, ex.Cfg)
	if err != nil {
		log.Fatal(err)
	}
	lStats, dump, err := run(ex, latest, true)
	if err != nil {
		log.Fatal(err)
	}
	profile := fix.ProfileFromUnit(dump.Units[0])
	fmt.Printf("latest-legal baseline: %d cycles, %d spent draining %d profiled barriers\n",
		lStats.Cycles, lStats.BarrierCycles, len(profile))

	evaluate := func(p *softbrain.Program) (uint64, error) {
		s, _, err := run(ex, p, false)
		if err != nil {
			return 0, err
		}
		return s.Cycles, nil
	}
	hoisted, moves, err := fix.HoistBarriers(latest, ex.Cfg,
		fix.HoistOpts{Profile: profile, Evaluate: evaluate})
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range moves {
		fmt.Printf("  hoist trace[%d] -> trace[%d] %v: drain %d, %d -> %d cycles\n",
			h.From, h.To, h.Kind, h.Drain, h.CyclesBefore, h.CyclesAfter)
	}
	hStats, _, err := run(ex, hoisted, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-aware placement: %d cycles (%+d), barrier drain %d (%+d)\n",
		hStats.Cycles, int64(hStats.Cycles)-int64(lStats.Cycles),
		hStats.BarrierCycles, int64(hStats.BarrierCycles)-int64(lStats.BarrierCycles))

	// The tuned placement is what a deployment would ship — for example
	// as a submission to sdserve — so round-trip it through the wire
	// serializer and prove the decoded program still simulates
	// identically. internal/wire's fuzz tests cover this encode/decode
	// pair on arbitrary programs; this is the same contract on a real one.
	blob, err := wire.EncodeProgram(hoisted)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := wire.DecodeProgram(blob)
	if err != nil {
		log.Fatal(err)
	}
	dStats, _, err := run(ex, decoded, false)
	if err != nil {
		log.Fatal(err)
	}
	if dStats.Cycles != hStats.Cycles {
		log.Fatalf("wire round-trip changed the simulation: %d -> %d cycles",
			hStats.Cycles, dStats.Cycles)
	}
	fmt.Printf("wire round-trip: %d-byte JSON, decoded program verified at %d cycles\n",
		len(blob), dStats.Cycles)
}

// run executes one placement variant against the example's inputs and
// golden checker, optionally with metrics for the drain profile.
func run(ex programs.Example, p *softbrain.Program, metrics bool) (*softbrain.Stats, obs.Dump, error) {
	m, err := softbrain.NewMachine(ex.Cfg)
	if err != nil {
		return nil, obs.Dump{}, err
	}
	if metrics {
		m.EnableMetrics(obs.New(0, obs.Options{}))
	}
	ex.Init(m.Sys.Mem)
	stats, err := m.Run(p)
	if err != nil {
		return nil, obs.Dump{}, err
	}
	if err := ex.Check(m.Sys.Mem); err != nil {
		return nil, obs.Dump{}, err
	}
	var d obs.Dump
	if metrics {
		d = m.MetricsDump()
	}
	return stats, d, nil
}

// serialize rebuilds p with an SD_Barrier_All after every non-barrier
// command.
func serialize(p *softbrain.Program) *softbrain.Program {
	q := softbrain.NewProgram(p.Name)
	for addr, blob := range p.Configs {
		q.Configs[addr] = blob
	}
	for _, op := range p.Trace {
		q.Trace = append(q.Trace, op)
		if op.Cmd != nil && !isa.IsBarrier(op.Cmd) {
			q.Trace = append(q.Trace, softbrain.TraceOp{Cmd: isa.BarrierAll{}})
		}
	}
	return q
}
