// Quickstart: the paper's Figure 4 program. A dataflow graph computes
// 3-element dot products; streams load two vectors from memory, store
// the per-instance results, and a barrier ends the phase. The loop of
// the original C code disappears into the stream lengths. The program
// itself is built in examples/programs (see Quickstart there), so the
// linter and tests audit exactly what this binary runs.
package main

import (
	"log"

	"softbrain/examples/programs"
)

func main() {
	ex, err := programs.Quickstart()
	if err != nil {
		log.Fatal(err)
	}
	m, stats, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	ex.Report(m, stats)
}
