// Pipeline: the minimal checked shared-region pipeline. Two units,
// two phases, one declared region: unit 0 multiplies two vectors into
// a staging buffer, the phase boundary publishes it, unit 1 adds a
// bias into the output. No inter-unit synchronization command exists
// in the ISA; the run is deterministic because the cluster linter
// proves the only shared bytes are the declared region and the reader
// runs a phase after the writer (docs/LINT.md). The program set is
// built in examples/programs (see Pipeline there), so the linter and
// tests audit exactly what this binary runs.
package main

import (
	"log"

	"softbrain/examples/programs"
)

func main() {
	ex, err := programs.Pipeline()
	if err != nil {
		log.Fatal(err)
	}
	m, stats, err := ex.Run(false)
	if err != nil {
		log.Fatal(err)
	}
	ex.Report(m, stats)
}
