// Classifier: the paper's Figure 6 end to end — a dense neural network
// layer (matrix-vector product plus sigmoid) with every stream-dataflow
// feature the example uses: the scratchpad for neuron reuse, a
// scratch-write barrier, constant streams driving the accumulator
// reset, port cleaning of partial sums, and 16-bit sub-word arithmetic.
// The program is built in examples/programs (see Classifier there), so
// the linter and tests audit exactly what this binary runs.
package main

import (
	"log"

	"softbrain/examples/programs"
)

func main() {
	ex, err := programs.Classifier()
	if err != nil {
		log.Fatal(err)
	}
	m, stats, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	ex.Report(m, stats)
}
